#include "meta/auto_tensorize.h"

#include <set>

#include "intrin/tensor_intrin.h"
#include "ir/transform.h"

namespace tir {
namespace meta {

namespace {

/** Strip casts off an expression. */
const ExprNode*
stripCast(const Expr& e)
{
    const ExprNode* node = e.get();
    while (node->kind == ExprKind::kCast) {
        node = static_cast<const CastNode*>(node)->value.get();
    }
    return node;
}

/** Parsed C[.] += A[.] * B[.] pattern. */
struct EinsumPattern
{
    bool valid = false;
    const BufferStoreNode* store = nullptr;
    const BufferLoadNode* lhs = nullptr; // first multiplicand
    const BufferLoadNode* rhs = nullptr; // second multiplicand
};

EinsumPattern
parseEinsum(const BlockNode& block)
{
    EinsumPattern result;
    if (!block.init || block.body->kind != StmtKind::kBufferStore) {
        return result;
    }
    const auto& store = static_cast<const BufferStoreNode&>(*block.body);
    if (store.value->kind != ExprKind::kAdd) return result;
    const auto& add = static_cast<const BinaryNode&>(*store.value);
    // One side must be the self-load of the output.
    const ExprNode* self = add.a.get();
    Expr update = add.b;
    if (self->kind != ExprKind::kBufferLoad ||
        static_cast<const BufferLoadNode*>(self)->buffer != store.buffer) {
        self = add.b.get();
        update = add.a;
    }
    if (self->kind != ExprKind::kBufferLoad ||
        static_cast<const BufferLoadNode*>(self)->buffer != store.buffer) {
        return result;
    }
    const ExprNode* mul = stripCast(update);
    if (mul->kind != ExprKind::kMul) return result;
    const auto& product = static_cast<const BinaryNode*>(mul);
    const ExprNode* lhs = stripCast(product->a);
    const ExprNode* rhs = stripCast(product->b);
    if (lhs->kind != ExprKind::kBufferLoad ||
        rhs->kind != ExprKind::kBufferLoad) {
        return result;
    }
    result.valid = true;
    result.store = &store;
    result.lhs = static_cast<const BufferLoadNode*>(lhs);
    result.rhs = static_cast<const BufferLoadNode*>(rhs);
    return result;
}

std::set<const VarNode*>
indexVars(const std::vector<Expr>& indices)
{
    std::set<const VarNode*> vars;
    for (const Expr& idx : indices) {
        for (const VarNode* v : collectVars(idx)) vars.insert(v);
    }
    return vars;
}

int64_t
roundUp(int64_t value, int64_t multiple)
{
    return (value + multiple - 1) / multiple * multiple;
}

} // namespace

std::vector<TensorizeCandidate>
generateTensorizeCandidates(const PrimFunc& func, const std::string& block,
                            const std::vector<std::string>& intrins)
{
    std::vector<TensorizeCandidate> candidates;
    BlockPtr b = findBlock(func->body, block);
    EinsumPattern pattern = parseEinsum(*b);
    if (!pattern.valid) return candidates;

    std::set<const VarNode*> c_vars = indexVars(pattern.store->indices);

    for (const std::string& intrin_name : intrins) {
        if (!TensorIntrin::exists(intrin_name)) continue;
        const TensorIntrin& ti = TensorIntrin::get(intrin_name);
        // Decide which multiplicand plays the A role (shares iterators
        // with the output alongside the reduction).
        const BufferLoadNode* a_load = pattern.lhs;
        const BufferLoadNode* b_load = pattern.rhs;
        if (a_load->buffer->dtype != ti.in_dtype ||
            b_load->buffer->dtype != ti.in_dtype ||
            pattern.store->buffer->dtype != ti.acc_dtype) {
            continue;
        }

        for (int attempt = 0; attempt < 2; ++attempt) {
            if (attempt == 1) std::swap(a_load, b_load);
            std::set<const VarNode*> a_vars = indexVars(a_load->indices);
            std::set<const VarNode*> b_vars = indexVars(b_load->indices);

            // Characteristic vectors (§4.2): membership in (C, A, B).
            std::vector<int> batch_group;
            std::vector<int> x_group;
            std::vector<int> y_group;
            std::vector<int> k_group;
            bool classified = true;
            for (size_t i = 0; i < b->iter_vars.size(); ++i) {
                const VarNode* v = b->iter_vars[i].var.get();
                bool in_c = c_vars.count(v);
                bool in_a = a_vars.count(v);
                bool in_b = b_vars.count(v);
                int idx = static_cast<int>(i);
                if (in_c && in_a && in_b) {
                    batch_group.push_back(idx);
                } else if (in_c && in_a) {
                    x_group.push_back(idx);
                } else if (in_c && in_b) {
                    y_group.push_back(idx);
                } else if (in_a && in_b) {
                    k_group.push_back(idx);
                } else {
                    classified = false;
                }
            }
            if (!classified || x_group.empty() || y_group.empty() ||
                k_group.empty()) {
                continue;
            }

            TensorizeCandidate cand;
            cand.block = block;
            cand.intrin = intrin_name;
            cand.has_batch = !batch_group.empty();
            if (cand.has_batch) cand.groups.push_back(batch_group);
            cand.groups.push_back(x_group);
            cand.groups.push_back(y_group);
            cand.groups.push_back(k_group);

            auto group_extent = [&](const std::vector<int>& group) {
                int64_t total = 1;
                for (int idx : group) {
                    total *= constIntOr(b->iter_vars[idx].dom.extent, 0);
                }
                return total;
            };
            int base = cand.has_batch ? 1 : 0;
            double useful = 1;
            double padded_total = 1;
            if (cand.has_batch) {
                int64_t e = group_extent(batch_group);
                cand.padded.push_back(e);
            }
            int64_t tiles[3] = {ti.tile_m, ti.tile_n, ti.tile_k};
            const std::vector<int>* groups3[3] = {&x_group, &y_group,
                                                  &k_group};
            for (int g = 0; g < 3; ++g) {
                int64_t e = group_extent(*groups3[g]);
                int64_t padded = roundUp(e, tiles[g]);
                cand.padded.push_back(padded);
                useful *= static_cast<double>(e);
                padded_total *= static_cast<double>(padded);
            }
            cand.padding_waste = padded_total / useful;

            auto order_for = [&](bool uses_batch,
                                 std::initializer_list<int> roles) {
                // roles are offsets into (x, y, k) = base+0, base+1,
                // base+2.
                std::vector<int> order;
                if (cand.has_batch && uses_batch) order.push_back(0);
                for (int role : roles) order.push_back(base + role);
                return order;
            };
            bool a_has_batch = true;
            bool b_has_batch = true;
            bool c_has_batch = true;
            if (cand.has_batch) {
                // All operands contain batch iterators by construction.
                a_has_batch = b_has_batch = c_has_batch = true;
            }
            cand.c_order = order_for(c_has_batch, {0, 1});
            cand.a_order = order_for(a_has_batch, {0, 2});
            cand.b_order = order_for(b_has_batch, {2, 1});
            cand.a_buffer = a_load->buffer;
            cand.b_buffer = b_load->buffer;
            candidates.push_back(std::move(cand));
            break; // this intrinsic matched; no need to swap roles
        }
    }
    return candidates;
}

namespace {

/** Index of the block read that touches `buffer`. */
int
readIndexOf(const Schedule& sch, const std::string& block,
            const Buffer& buffer)
{
    BlockPtr b = sch.getBlock(block);
    for (size_t i = 0; i < b->reads.size(); ++i) {
        if (b->reads[i].buffer == buffer) return static_cast<int>(i);
    }
    TIR_FATAL << "block " << block << " does not read " << buffer->name;
}

} // namespace

namespace {

/**
 * An operand's ReIndex stage is an identity reshape — the paper's "will
 * be inlined into consumers and do not affect the performance" case —
 * when the access indices are exactly the operand's ordered group
 * iterators (no gather arithmetic) and no padding was added.
 */
bool
isIdentityReindex(const Schedule& sch, const TensorizeCandidate& cand,
                  const std::vector<int>& operand_order,
                  const Buffer& buffer, bool is_output)
{
    BlockPtr b = sch.getBlock(cand.block);
    // Padding on any applicable group breaks the identity.
    for (int g : operand_order) {
        int64_t original = 1;
        for (int iter_index : cand.groups[static_cast<size_t>(g)]) {
            original *= constIntOr(
                b->iter_vars[iter_index].dom.extent, 0);
        }
        if (original != cand.padded[static_cast<size_t>(g)]) return false;
    }
    // Access indices must be the ordered plain group iterators.
    std::vector<const VarNode*> expected;
    for (int g : operand_order) {
        for (int iter_index : cand.groups[static_cast<size_t>(g)]) {
            expected.push_back(b->iter_vars[iter_index].var.get());
        }
    }
    std::vector<Expr> access;
    if (is_output) {
        if (b->body->kind != StmtKind::kBufferStore) return false;
        access = static_cast<const BufferStoreNode&>(*b->body).indices;
    } else {
        // Find the load of `buffer` in the body.
        struct Find : public StmtExprVisitor
        {
            const Buffer* target;
            const BufferLoadNode* found = nullptr;
            void
            visitBufferLoad(const BufferLoadNode& node) override
            {
                if (node.buffer == *target && !found) found = &node;
                StmtExprVisitor::visitBufferLoad(node);
            }
        } find;
        find.target = &buffer;
        find.visitStmt(b->body);
        if (!find.found) return false;
        access = find.found->indices;
    }
    if (access.size() != expected.size()) return false;
    for (size_t i = 0; i < access.size(); ++i) {
        if (access[i]->kind != ExprKind::kVar ||
            access[i].get() != expected[i]) {
            return false;
        }
    }
    return true;
}

} // namespace

ReindexBlocks
applyReindexAndLayout(Schedule& sch, const TensorizeCandidate& cand)
{
    ReindexBlocks result;
    bool a_free = isIdentityReindex(sch, cand, cand.a_order,
                                    cand.a_buffer, false);
    bool b_free = isIdentityReindex(sch, cand, cand.b_order,
                                    cand.b_buffer, false);
    bool c_free = isIdentityReindex(sch, cand, cand.c_order, nullptr,
                                    true);
    result.a_copy = sch.reindexFused(
        cand.block, readIndexOf(sch, cand.block, cand.a_buffer),
        cand.groups, cand.padded, cand.a_order);
    result.b_copy = sch.reindexFused(
        cand.block, readIndexOf(sch, cand.block, cand.b_buffer),
        cand.groups, cand.padded, cand.b_order);
    result.c_writeback = sch.reindexFused(cand.block, -1, cand.groups,
                                          cand.padded, cand.c_order);
    if (a_free) {
        sch.annotateBlock(result.a_copy, "layout_free", intImm(1));
    }
    if (b_free) {
        sch.annotateBlock(result.b_copy, "layout_free", intImm(1));
    }
    if (c_free) {
        sch.annotateBlock(result.c_writeback, "layout_free", intImm(1));
    }
    result.a_fused = sch.getBlock(result.a_copy)->writes[0].buffer;
    result.b_fused = sch.getBlock(result.b_copy)->writes[0].buffer;
    result.c_fused = sch.getBlock(result.c_writeback)->reads[0].buffer;
    sch.transformBlockLayout(cand.block, cand.groups, cand.padded);
    return result;
}

} // namespace meta
} // namespace tir
