#include "meta/runner.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define TENSORIR_RUNNER_POSIX 1
#include <dirent.h>
#include <dlfcn.h>
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "runtime/ndarray.h"
#include "support/cpu_pin.h"
#include "support/crc32.h"
#include "support/failpoint.h"
#include "support/rng.h"
#include "support/trace.h"

namespace tir {
namespace meta {

const char*
runnerStatusName(RunnerStatus status)
{
    switch (status) {
      case RunnerStatus::kOk: return "ok";
      case RunnerStatus::kReject: return "reject";
      case RunnerStatus::kCrash: return "crash";
      case RunnerStatus::kHang: return "hang";
      default: return "unavailable";
    }
}

#if TENSORIR_RUNNER_POSIX

namespace {

// --- pipe framing -------------------------------------------------------
// Records are newline-terminated body lines followed by a "crc <8 hex>"
// line over the body — the journal's framing discipline, so a torn
// write or a corrupted byte is detected on either side of the pipe.

constexpr size_t kMaxFrameBytes = 1 << 20;

std::string
frameRecord(const std::string& body)
{
    char crc_line[16];
    std::snprintf(crc_line, sizeof(crc_line), "crc %08x\n",
                  support::crc32(body));
    return body + crc_line;
}

/** Scan `buffer` for a complete frame. Returns 0 while incomplete, 1
 *  on a verified frame (extracted into `body` and consumed from the
 *  buffer), -1 on a corrupt frame or an oversized buffer. */
int
extractFrame(std::string& buffer, std::string* body)
{
    size_t scan = 0;
    while (scan < buffer.size()) {
        size_t nl = buffer.find('\n', scan);
        if (nl == std::string::npos) break;
        if (buffer.compare(scan, 4, "crc ") == 0) {
            std::string line = buffer.substr(scan, nl - scan);
            std::string head = buffer.substr(0, scan);
            uint32_t stored = static_cast<uint32_t>(
                std::strtoul(line.c_str() + 4, nullptr, 16));
            if (line.size() != 12 || stored != support::crc32(head)) {
                return -1;
            }
            *body = std::move(head);
            buffer.erase(0, nl + 1);
            return 1;
        }
        scan = nl + 1;
    }
    return buffer.size() > kMaxFrameBytes ? -1 : 0;
}

/** Write all of `data` to `fd`; false on any error (EPIPE shows up
 *  here as a failed write because the runner ignores SIGPIPE). */
bool
writeAll(int fd, const std::string& data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

std::string
latencyBits(double value)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, bits);
    return buf;
}

bool
latencyOf(const std::string& hex, double* value)
{
    if (hex.size() != 16 ||
        hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
        return false;
    }
    uint64_t bits = std::strtoull(hex.c_str(), nullptr, 16);
    std::memcpy(value, &bits, sizeof(*value));
    return true;
}

// --- worker child -------------------------------------------------------

/** Close every inherited descriptor except stdio and the worker's two
 *  pipe ends: the journal stream, trace files, jit-cache lock fds and
 *  anything else the parent had open must not stay writable from the
 *  child (a stray child write would corrupt parent-owned files, and a
 *  held flock fd would pin the cross-process compile lock). */
void
closeInheritedFds(int keep_a, int keep_b)
{
    DIR* dir = ::opendir("/proc/self/fd");
    if (!dir) {
        // Conservative fallback: sweep a plausible descriptor range.
        for (int fd = 3; fd < 1024; ++fd) {
            if (fd != keep_a && fd != keep_b) ::close(fd);
        }
        return;
    }
    int dir_fd = ::dirfd(dir);
    std::vector<int> to_close;
    while (struct dirent* ent = ::readdir(dir)) {
        char* end = nullptr;
        long fd = std::strtol(ent->d_name, &end, 10);
        if (!end || *end != '\0') continue;
        if (fd <= 2 || fd == keep_a || fd == keep_b || fd == dir_fd) {
            continue;
        }
        to_close.push_back(static_cast<int>(fd));
    }
    ::closedir(dir);
    for (int fd : to_close) ::close(fd);
}

/** Blocking frame read on the request pipe. Returns 1 on a verified
 *  frame, 0 on EOF (parent closed the pipe), -1 on a corrupt frame. */
int
childReadFrame(int fd, std::string& buffer, std::string* body)
{
    for (;;) {
        int got = extractFrame(buffer, body);
        if (got != 0) return got;
        char chunk[4096];
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return 0;
        buffer.append(chunk, static_cast<size_t>(n));
    }
}

/** The worker's argument tensors, built once per worker from the
 *  workload inherited at fork time — the same derivation stream as
 *  JitMeasurer::ensureArguments, so isolated and in-process
 *  measurements run identical inputs. */
struct ChildArguments
{
    std::vector<runtime::NDArray> arrays;
    bool ok = false;
};

ChildArguments
buildChildArguments(const PrimFunc& workload, uint64_t seed)
{
    ChildArguments out;
    try {
        Rng rng = Rng::derive(seed, ~uint64_t{0}, 1);
        for (const Buffer& param : workload->params) {
            std::vector<int64_t> shape;
            for (size_t d = 0; d < param->ndim(); ++d) {
                shape.push_back(param->shapeInt(d));
            }
            runtime::NDArray array(param->dtype, shape);
            if (param->dtype.isInt()) {
                array.fillRandom(rng, -4, 4);
            } else {
                array.fillRandom(rng);
            }
            out.arrays.push_back(std::move(array));
        }
        out.ok = true;
    } catch (const std::exception&) {
        out.arrays.clear();
    }
    return out;
}

/** Handle one parsed request inside the worker; returns the response
 *  body. Never throws: every failure becomes a "reject <why>" reply. */
std::string
childHandleRequest(const std::string& body, ChildArguments& args)
{
    std::istringstream is(body);
    std::string line, tag, entry_symbol, object_path;
    size_t num_params = 0;
    int warmup = 0, repeats = 1, pin = 0;
    unsigned long long step_limit = 0, key = 0;
    std::vector<int64_t> local_counts;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        ls >> tag;
        if (tag == "run") {
            ls >> entry_symbol >> num_params >> warmup >> repeats >>
                step_limit >> pin >> key;
            if (ls.fail()) return "reject protocol";
        } else if (tag == "locals") {
            size_t n = 0;
            ls >> n;
            int64_t count = 0;
            while (ls >> count) local_counts.push_back(count);
            if (local_counts.size() != n) return "reject protocol";
        } else if (tag == "path") {
            // The path may contain spaces: everything after "path ".
            if (line.size() > 5) object_path = line.substr(5);
        } else if (!tag.empty()) {
            return "reject protocol";
        }
    }
    if (entry_symbol.empty() || object_path.empty()) {
        return "reject protocol";
    }

    // Deterministic child-death injection, keyed by candidate identity
    // (the failpoint registry was inherited at fork time). These are
    // what make the crash/hang classification paths testable: a fired
    // site kills or wedges this worker exactly like hostile generated
    // code would, and the parent must classify, account, and carry on.
    if (failpoint::inject("runner.crash", key)) ::abort();
    if (failpoint::inject("runner.segv", key)) ::raise(SIGSEGV);
    if (failpoint::inject("runner.hang", key)) {
        for (;;) ::pause();
    }
    // Same site the in-process engines evaluate before a run, so a
    // chaos schedule rejects candidates identically either way.
    if (failpoint::inject("interp.run", key)) return "reject injected";

    if (!args.ok) return "reject arguments";
    if (num_params != args.arrays.size()) return "reject params";

    void* handle = ::dlopen(object_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!handle) return "reject dlopen";
    using EntryFn = int64_t (*)(double**, int64_t);
    auto entry = reinterpret_cast<EntryFn>(
        ::dlsym(handle, entry_symbol.c_str()));
    if (!entry) {
        ::dlclose(handle);
        return "reject symbol";
    }

    std::string reply;
    {
        std::vector<std::vector<double>> locals;
        std::vector<double*> bufs;
        bufs.reserve(args.arrays.size() + local_counts.size());
        for (runtime::NDArray& a : args.arrays) bufs.push_back(a.data());
        for (int64_t count : local_counts) {
            locals.emplace_back(
                static_cast<size_t>(std::max<int64_t>(count, 0)), 0.0);
            bufs.push_back(locals.back().data());
        }
        // The pin lives in the child on purpose: a pin held across a
        // fork would leak into respawned workers and never be restored
        // (see support/cpu_pin.h). Process exit discards it.
        support::ScopedCpuPin cpu_pin(pin != 0);
        auto run_once = [&]() -> int64_t {
            return entry(bufs.data(), static_cast<int64_t>(step_limit));
        };
        bool fuel_out = false;
        for (int i = 0; i < warmup && !fuel_out; ++i) {
            fuel_out = run_once() != 0;
        }
        if (!fuel_out) {
            int n = std::max(1, repeats);
            std::vector<double> samples(static_cast<size_t>(n));
            for (int i = 0; i < n && !fuel_out; ++i) {
                auto start = std::chrono::steady_clock::now();
                fuel_out = run_once() != 0;
                samples[static_cast<size_t>(i)] =
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
            }
            if (!fuel_out) {
                auto mid = samples.begin() +
                           static_cast<std::ptrdiff_t>(samples.size() / 2);
                std::nth_element(samples.begin(), mid, samples.end());
                // Same clamp as the in-process path: a kernel faster
                // than the clock must still report a positive latency.
                reply = "ok " + latencyBits(std::max(*mid, 1e-3));
            }
        }
        if (fuel_out) reply = "reject fuel";
    }
    ::dlclose(handle);
    return reply;
}

/** Worker main loop: handshake, then serve requests until the parent
 *  closes the request pipe. Exits only via _exit — the child must
 *  never run the parent's atexit handlers or destructors. */
[[noreturn]] void
workerMain(int req_fd, int resp_fd, const PrimFunc& workload,
           uint64_t seed)
{
    if (!writeAll(resp_fd, frameRecord("ready\n"))) _exit(2);
    ChildArguments args = buildChildArguments(workload, seed);
    std::string buffer;
    for (;;) {
        std::string body;
        int got = childReadFrame(req_fd, buffer, &body);
        if (got != 1) {
            // EOF: the parent closed the pipe (runner destruction) —
            // the clean shutdown path. A corrupt frame exits nonzero.
            _exit(got == 0 ? 0 : 3);
        }
        std::string reply = childHandleRequest(body, args);
        if (!writeAll(resp_fd, frameRecord(reply + "\n"))) _exit(2);
    }
}

double
monotonicMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

bool
MeasureRunner::available()
{
    return true;
}

MeasureRunner::MeasureRunner(PrimFunc workload, RunnerConfig config)
    : workload_(std::move(workload)), config_(std::move(config))
{
    // A worker dying mid-request turns parent writes into SIGPIPE;
    // ignore it for the life of the runner so the write fails with
    // EPIPE (classified and retried) instead of killing the process.
    struct sigaction ignore_sa;
    std::memset(&ignore_sa, 0, sizeof(ignore_sa));
    ignore_sa.sa_handler = SIG_IGN;
    saved_sigpipe_.resize(sizeof(struct sigaction));
    if (::sigaction(SIGPIPE, &ignore_sa,
                    reinterpret_cast<struct sigaction*>(
                        saved_sigpipe_.data())) == 0) {
        sigpipe_saved_ = true;
    }
    workers_.resize(static_cast<size_t>(std::max(1, config_.pool_size)));
    // Pre-fork eagerly: the measurer is constructed before the search
    // spawns its thread pool, so the initial forks happen while this
    // process is still single-threaded — the only fully safe time.
    // Respawns after a crash happen from the sequential measurement
    // fold, when pool threads are parked on their condition variable.
    for (Worker& w : workers_) spawnWorker(w);
}

MeasureRunner::~MeasureRunner()
{
    for (Worker& w : workers_) destroyWorker(w, /*force_kill=*/false);
    if (sigpipe_saved_) {
        ::sigaction(SIGPIPE,
                    reinterpret_cast<struct sigaction*>(
                        saved_sigpipe_.data()),
                    nullptr);
    }
}

bool
MeasureRunner::spawnWorker(Worker& worker)
{
    // Simulated startup failure — the transient class the retry/backoff
    // path is tested against.
    if (failpoint::inject("runner.spawn")) return false;
    int req_pipe[2] = {-1, -1};
    int resp_pipe[2] = {-1, -1};
    if (::pipe(req_pipe) != 0) return false;
    if (::pipe(resp_pipe) != 0) {
        ::close(req_pipe[0]);
        ::close(req_pipe[1]);
        return false;
    }
    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(req_pipe[0]);
        ::close(req_pipe[1]);
        ::close(resp_pipe[0]);
        ::close(resp_pipe[1]);
        return false;
    }
    if (pid == 0) {
        ::close(req_pipe[1]);
        ::close(resp_pipe[0]);
        closeInheritedFds(req_pipe[0], resp_pipe[1]);
        workerMain(req_pipe[0], resp_pipe[1], workload_, config_.seed);
    }
    ::close(req_pipe[0]);
    ::close(resp_pipe[1]);
    worker.pid = static_cast<int>(pid);
    worker.req_fd = req_pipe[1];
    worker.resp_fd = resp_pipe[0];
    worker.buffer.clear();

    // Startup handshake: a worker that cannot even say "ready" (exec
    // environment broken, immediate death) is a startup failure, not a
    // candidate crash — nothing of the candidate ran yet.
    double deadline = monotonicMs() + 5000;
    for (;;) {
        std::string body;
        int got = extractFrame(worker.buffer, &body);
        if (got == 1 && body == "ready\n") break;
        if (got != 0) {
            destroyWorker(worker, /*force_kill=*/true);
            return false;
        }
        double remaining = deadline - monotonicMs();
        struct pollfd pfd;
        pfd.fd = worker.resp_fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        int pr = ::poll(&pfd, 1,
                        remaining <= 0
                            ? 0
                            : static_cast<int>(remaining) + 1);
        if (pr <= 0 && remaining <= 0) {
            destroyWorker(worker, /*force_kill=*/true);
            return false;
        }
        if (pr <= 0) continue;
        char chunk[512];
        ssize_t n = ::read(worker.resp_fd, chunk, sizeof(chunk));
        if (n <= 0) {
            destroyWorker(worker, /*force_kill=*/true);
            return false;
        }
        worker.buffer.append(chunk, static_cast<size_t>(n));
    }
    trace::counterAdd("runner.spawns", 1);
    return true;
}

void
MeasureRunner::destroyWorker(Worker& worker, bool force_kill)
{
    if (worker.pid < 0) return;
    if (force_kill) ::kill(worker.pid, SIGKILL);
    if (worker.req_fd >= 0) ::close(worker.req_fd);
    if (worker.resp_fd >= 0) ::close(worker.resp_fd);
    // With the request pipe closed a healthy worker reads EOF and
    // _exits promptly, so a blocking reap cannot wedge; a killed one
    // is already a zombie.
    int status = 0;
    while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
    }
    worker = Worker{};
}

int
MeasureRunner::reapWorker(Worker& worker)
{
    if (worker.pid < 0) return -1;
    int status = -1;
    while (::waitpid(worker.pid, &status, 0) < 0) {
        if (errno != EINTR) {
            status = -1;
            break;
        }
    }
    if (worker.req_fd >= 0) ::close(worker.req_fd);
    if (worker.resp_fd >= 0) ::close(worker.resp_fd);
    worker = Worker{};
    return status;
}

RunnerResult
MeasureRunner::run(const RunnerRequest& request)
{
    RunnerResult result;
    trace::Span span("runner.request",
                     trace::arg("key",
                                static_cast<int64_t>(request.key)));

    std::ostringstream body;
    body << "run " << request.entry_symbol << " " << request.num_params
         << " " << request.warmup << " " << request.repeats << " "
         << request.step_limit << " " << (request.pin_cpu ? 1 : 0)
         << " " << request.key << "\n";
    body << "locals " << request.local_counts.size();
    for (int64_t c : request.local_counts) body << " " << c;
    body << "\n";
    body << "path " << request.object_path << "\n";
    const std::string framed = frameRecord(body.str());

    const int attempts = std::max(0, config_.retries) + 1;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            // Bounded exponential backoff before retrying a transient
            // failure (startup failure, clean death without a reply).
            std::this_thread::sleep_for(std::chrono::milliseconds(
                static_cast<int64_t>(config_.backoff_ms)
                << (attempt - 1)));
            trace::counterAdd("runner.transient_retries", 1);
            result.retries = attempt;
        }
        Worker& worker = workers_[next_worker_];
        next_worker_ = (next_worker_ + 1) % workers_.size();
        if (worker.pid < 0 && !spawnWorker(worker)) {
            result.detail = "worker startup failed";
            continue; // transient
        }
        if (!writeAll(worker.req_fd, framed)) {
            // The worker died before this request reached it: nothing
            // of the candidate ran, so this is transient, not a crash.
            reapWorker(worker);
            result.detail = "request write failed";
            continue;
        }

        const bool unlimited = config_.timeout_ms <= 0;
        double deadline = monotonicMs() + config_.timeout_ms;
        bool corrupt = false;
        std::string reply;
        for (;;) {
            int got = extractFrame(worker.buffer, &reply);
            if (got == 1) break;
            if (got == -1) {
                corrupt = true;
                break;
            }
            double remaining = unlimited ? 0 : deadline - monotonicMs();
            if (!unlimited && remaining <= 0) {
                // Hard timeout: the cooperative watchdog cannot stop a
                // native loop, SIGKILL can. Classified, never retried.
                ::kill(worker.pid, SIGKILL);
                reapWorker(worker);
                result.status = RunnerStatus::kHang;
                result.term_signal = SIGKILL;
                result.detail = "timeout";
                trace::counterAdd("runner.hangs", 1);
                span.addArg(trace::arg("status", "hang"));
                return result;
            }
            struct pollfd pfd;
            pfd.fd = worker.resp_fd;
            pfd.events = POLLIN;
            pfd.revents = 0;
            int pr = ::poll(&pfd, 1,
                            unlimited
                                ? -1
                                : static_cast<int>(remaining) + 1);
            if (pr < 0 && errno == EINTR) continue;
            if (pr <= 0) continue; // deadline re-checked above
            char chunk[4096];
            ssize_t n = ::read(worker.resp_fd, chunk, sizeof(chunk));
            if (n < 0 && errno == EINTR) continue;
            if (n <= 0) break; // EOF: worker died mid-request
            worker.buffer.append(chunk, static_cast<size_t>(n));
        }

        if (!reply.empty() && !corrupt) {
            // Strip the trailing newline the child framed in.
            if (reply.back() == '\n') reply.pop_back();
            if (reply.rfind("ok ", 0) == 0 &&
                latencyOf(reply.substr(3), &result.latency_us)) {
                result.status = RunnerStatus::kOk;
                span.addArg(trace::arg("latency_us", result.latency_us));
                return result;
            }
            if (reply.rfind("reject", 0) == 0) {
                result.status = RunnerStatus::kReject;
                result.detail =
                    reply.size() > 7 ? reply.substr(7) : "reject";
                result.latency_us =
                    std::numeric_limits<double>::infinity();
                span.addArg(trace::arg("status", "reject"));
                return result;
            }
            corrupt = true; // unparseable reply: protocol desync
        }

        // EOF or a corrupt frame: reap and classify from the waitpid
        // status. Death by signal or a nonzero exit while the kernel
        // was running is a deterministic crash — never retried.
        if (corrupt) ::kill(worker.pid, SIGKILL);
        int status = reapWorker(worker);
        if (status >= 0 && WIFSIGNALED(status)) {
            result.status = RunnerStatus::kCrash;
            result.term_signal = WTERMSIG(status);
            result.detail =
                "signal " + std::to_string(result.term_signal);
            trace::counterAdd("runner.crashes", 1);
            span.addArg(trace::arg("status", "crash"));
            return result;
        }
        if (status >= 0 && WIFEXITED(status) &&
            WEXITSTATUS(status) != 0) {
            result.status = RunnerStatus::kCrash;
            result.exit_code = WEXITSTATUS(status);
            result.detail = "exit " + std::to_string(result.exit_code);
            trace::counterAdd("runner.crashes", 1);
            span.addArg(trace::arg("status", "crash"));
            return result;
        }
        // Clean exit without a reply (or nothing reapable): transient.
        result.detail = "worker exited without reply";
    }
    result.status = RunnerStatus::kUnavailable;
    trace::counterAdd("runner.unavailable", 1);
    span.addArg(trace::arg("status", "unavailable"));
    return result;
}

#else // !TENSORIR_RUNNER_POSIX

bool
MeasureRunner::available()
{
    return false;
}

MeasureRunner::MeasureRunner(PrimFunc workload, RunnerConfig config)
    : workload_(std::move(workload)), config_(std::move(config))
{
}

MeasureRunner::~MeasureRunner() = default;

bool
MeasureRunner::spawnWorker(Worker&)
{
    return false;
}

void
MeasureRunner::destroyWorker(Worker&, bool)
{
}

int
MeasureRunner::reapWorker(Worker&)
{
    return -1;
}

RunnerResult
MeasureRunner::run(const RunnerRequest&)
{
    return RunnerResult{};
}

#endif // TENSORIR_RUNNER_POSIX

} // namespace meta
} // namespace tir
