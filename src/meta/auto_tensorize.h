/**
 * @file
 * Tensorization candidate generation (§4.2). Matches an einsum block's
 * expression pattern against registered tensor intrinsics, computes the
 * characteristic vector of every block iterator, groups iterators by
 * matching characteristic vectors (batch iterators — appearing in all
 * operands — form their own group), and decides the padded, fused
 * extents. applyReindexAndLayout then performs the ReIndex + layout
 * rewrite + iterator-space transformation on a schedule.
 */
#ifndef TENSORIR_META_AUTO_TENSORIZE_H
#define TENSORIR_META_AUTO_TENSORIZE_H

#include <string>
#include <vector>

#include "tir/schedule.h"

namespace tir {
namespace meta {

/** One way to tensorize an einsum block with a specific intrinsic. */
struct TensorizeCandidate
{
    std::string block;
    std::string intrin;
    /** Iterator groups in [batch?, x, y, k] order. */
    std::vector<std::vector<int>> groups;
    /** Fused extent per group, padded to the intrinsic tile. */
    std::vector<int64_t> padded;
    bool has_batch = false;
    /** Group indices in each operand's layout order. */
    std::vector<int> c_order;
    std::vector<int> a_order;
    std::vector<int> b_order;
    /** The operand buffers (identity survives scheduling). */
    Buffer a_buffer;
    Buffer b_buffer;
    /** Wasted-compute ratio introduced by padding (>= 1). */
    double padding_waste = 1.0;
};

/**
 * Generate tensorization candidates for `block` against each intrinsic
 * name in `intrins`. Blocks that do not match the C += A * B pattern, or
 * whose iterators cannot be grouped (e.g. depthwise conv has no y-class
 * iterator), yield no candidate — the op then falls back to non-
 * tensorized sketches, mirroring the paper's pipeline.
 */
std::vector<TensorizeCandidate> generateTensorizeCandidates(
    const PrimFunc& func, const std::string& block,
    const std::vector<std::string>& intrins);

/** Copy blocks created by applyReindexAndLayout. */
struct ReindexBlocks
{
    std::string a_copy;
    std::string b_copy;
    std::string c_writeback;
    Buffer a_fused;
    Buffer b_fused;
    Buffer c_fused;
};

/** Apply the candidate's ReIndex + layout + iterator fusion rewrites. */
ReindexBlocks applyReindexAndLayout(Schedule& sch,
                                    const TensorizeCandidate& cand);

} // namespace meta
} // namespace tir

#endif // TENSORIR_META_AUTO_TENSORIZE_H
