/**
 * @file
 * Storage-sync insertion for lowered functions. Mirrors TVM's
 * ThreadSync pass in miniature: within a kernel launch, a barrier is
 * required before any statement that touches a shared-scope buffer some
 * earlier statement of the same sequence wrote, and at the top of a
 * serial loop whose body both writes and reads shared memory (the
 * loop-carried hazard of software-pipelined staging copies). The
 * sequential interpreter does not need the barriers to compute correct
 * values; the static race analysis does need them to prove cross-thread
 * read-after-write ordering.
 */
#include "lower/lower.h"

#include <set>

#include "ir/functor.h"
#include "ir/transform.h"
#include "support/trace.h"

namespace tir {

namespace {

/** Shared-scope buffers touched by a statement, split by direction. */
struct SharedTouch
{
    std::set<const BufferNode*> reads;
    std::set<const BufferNode*> writes;
};

SharedTouch
sharedTouch(const Stmt& stmt)
{
    SharedTouch touch;
    for (const BufferNode* b : buffersRead(stmt)) {
        if (b->scope == "shared") touch.reads.insert(b);
    }
    for (const BufferNode* b : buffersWritten(stmt)) {
        if (b->scope == "shared") touch.writes.insert(b);
    }
    return touch;
}

bool
intersects(const std::set<const BufferNode*>& a,
           const std::set<const BufferNode*>& b)
{
    for (const BufferNode* x : a) {
        if (b.count(x)) return true;
    }
    return false;
}

bool
startsWithSync(const Stmt& body)
{
    if (asStorageSync(*body)) return true;
    return body->kind == StmtKind::kSeq &&
           asStorageSync(
               *static_cast<const SeqStmtNode&>(*body).seq.front());
}

class SyncInserter : public StmtExprMutator
{
  public:
    Stmt
    mutateStmt(const Stmt& s) override
    {
        if (s->kind == StmtKind::kIfThenElse) {
            // Inside an If whose condition depends on a thread
            // variable no barrier may be inserted: only part of the
            // thread block would reach it.
            const auto& n = static_cast<const IfThenElseNode&>(*s);
            bool saved = divergent_;
            for (const VarNode* v : collectVars(n.cond)) {
                if (thread_vars_.count(v)) divergent_ = true;
            }
            Stmt result = StmtExprMutator::mutateStmt(s);
            divergent_ = saved;
            return result;
        }
        if (s->kind != StmtKind::kSeq || !in_launch_ || divergent_) {
            return StmtExprMutator::mutateStmt(s);
        }
        const auto& n = static_cast<const SeqStmtNode&>(*s);
        std::vector<Stmt> rewritten;
        rewritten.reserve(n.seq.size());
        // Shared buffers written since the last barrier in this
        // sequence; any later touch of one of them needs a barrier.
        std::set<const BufferNode*> pending;
        for (const Stmt& sub : n.seq) {
            if (asStorageSync(*sub)) {
                pending.clear();
                rewritten.push_back(sub);
                continue;
            }
            SharedTouch touch = sharedTouch(sub);
            if (intersects(pending, touch.reads) ||
                intersects(pending, touch.writes)) {
                rewritten.push_back(storageSync());
                pending.clear();
            }
            rewritten.push_back(mutateStmt(sub));
            pending.insert(touch.writes.begin(), touch.writes.end());
        }
        return seq(std::move(rewritten));
    }

  protected:
    Stmt
    mutateFor(const Stmt& s) override
    {
        const auto& n = static_cast<const ForNode&>(*s);
        bool was_launch = in_launch_;
        bool is_thread = n.for_kind == ForKind::kThreadBinding;
        if (is_thread) {
            in_launch_ = true;
            thread_vars_.insert(n.loop_var.get());
        }
        Stmt result = StmtExprMutator::mutateFor(s);
        // A serial loop inside a launch whose body both writes and
        // reads shared memory carries a hazard across iterations:
        // barrier at the top of every iteration.
        if (in_launch_ && !divergent_ && !is_thread) {
            SharedTouch touch = sharedTouch(n.body);
            if (intersects(touch.writes, touch.reads)) {
                const auto& rewritten =
                    static_cast<const ForNode&>(*result);
                if (!startsWithSync(rewritten.body)) {
                    result = makeFor(rewritten.loop_var, rewritten.min,
                                     rewritten.extent,
                                     seq({storageSync(),
                                          rewritten.body}),
                                     rewritten.for_kind,
                                     rewritten.thread_tag,
                                     rewritten.annotations);
                }
            }
        }
        if (is_thread) {
            in_launch_ = was_launch;
            thread_vars_.erase(n.loop_var.get());
        }
        return result;
    }

  private:
    bool in_launch_ = false;
    bool divergent_ = false;
    std::set<const VarNode*> thread_vars_;
};

} // namespace

PrimFunc
insertStorageSync(const PrimFunc& lowered)
{
    TIR_CHECK(isBlockFree(lowered->body))
        << "insertStorageSync expects a lowered (block-free) function";
    trace::Span span("lower.insert_storage_sync",
                     trace::arg("func", lowered->name));
    SyncInserter inserter;
    Stmt body = inserter.mutateStmt(lowered->body);
    return makeFunc(lowered->name, lowered->params, body, lowered->attrs);
}

} // namespace tir
