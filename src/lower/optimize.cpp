/**
 * @file
 * Analysis-driven optimization passes over lowered TensorIR. Both
 * passes are thin: the dataflow framework (tir/analysis/dataflow.h)
 * decides *what* is removable — redundant barriers by greedy elision
 * over barrierLoadBearing verdicts, dead stores by may-observe
 * liveness — and this file only performs the mechanical rewrite,
 * mapping analysis results back onto AST nodes through the statement
 * pointers the access extractor records. Correctness is pinned by the
 * three-engine differential parity suite (tests/test_dataflow.cpp):
 * optimized and unoptimized lowerings must agree bit-exactly.
 */
#include "lower/lower.h"

#include <set>

#include "ir/transform.h"
#include "support/trace.h"
#include "tir/analysis/dataflow.h"

namespace tir {

namespace {

/** Rebuild a statement tree with a set of statements removed, pruning
 *  loops and sequences left empty. Returns null when the whole subtree
 *  vanishes; returns the original node when nothing underneath
 *  changed (structural sharing keeps rewrites cheap). */
class StmtStripper
{
  public:
    explicit StmtStripper(std::set<const StmtNode*> kill)
        : kill_(std::move(kill))
    {}

    int removed = 0;

    Stmt
    strip(const Stmt& s)
    {
        if (kill_.count(s.get())) {
            ++removed;
            return Stmt();
        }
        switch (s->kind) {
          case StmtKind::kSeq: {
            const auto& n = static_cast<const SeqStmtNode&>(*s);
            std::vector<Stmt> parts;
            parts.reserve(n.seq.size());
            bool changed = false;
            for (const Stmt& sub : n.seq) {
                Stmt rewritten = strip(sub);
                if (rewritten.get() != sub.get()) changed = true;
                if (rewritten) parts.push_back(std::move(rewritten));
            }
            if (!changed) return s;
            if (parts.empty()) return Stmt();
            return seq(std::move(parts));
          }
          case StmtKind::kFor: {
            const auto& n = static_cast<const ForNode&>(*s);
            Stmt body = strip(n.body);
            if (body.get() == n.body.get()) return s;
            // A loop whose body vanished has no effects left at all:
            // the removed statements were its only contents.
            if (!body) return Stmt();
            return makeFor(n.loop_var, n.min, n.extent, std::move(body),
                           n.for_kind, n.thread_tag, n.annotations);
          }
          case StmtKind::kIfThenElse: {
            const auto& n = static_cast<const IfThenElseNode&>(*s);
            Stmt then_case = strip(n.then_case);
            Stmt else_case =
                n.else_case ? strip(n.else_case) : Stmt();
            if (then_case.get() == n.then_case.get() &&
                else_case.get() == n.else_case.get()) {
                return s;
            }
            if (!then_case && !else_case) return Stmt();
            // IfThenElse requires a then branch; when only the else
            // survives, invert the condition instead of inventing a
            // placeholder statement (no engine-neutral no-op exists
            // besides storage_sync, which would perturb analysis).
            if (!then_case) {
                return ifThenElse(notExpr(n.cond),
                                  std::move(else_case));
            }
            return ifThenElse(n.cond, std::move(then_case),
                              std::move(else_case));
          }
          default:
            return s;
        }
    }

  private:
    std::set<const StmtNode*> kill_;
};

/** Apply one strip round; returns the input function unchanged when
 *  the kill set is empty or nothing matched. */
PrimFunc
stripStmts(const PrimFunc& func, std::set<const StmtNode*> kill,
           int* removed)
{
    *removed = 0;
    if (kill.empty()) return func;
    StmtStripper stripper(std::move(kill));
    Stmt body = stripper.strip(func->body);
    *removed = stripper.removed;
    if (stripper.removed == 0) return func;
    // A function whose whole body was stripped computes nothing; keep
    // one storage_sync — the statement every engine (interpreter, VM,
    // JIT codegen) executes as a no-op — as the body placeholder.
    if (!body) body = storageSync();
    return makeFunc(func->name, func->params, std::move(body),
                    func->attrs);
}

} // namespace

PrimFunc
elideRedundantSync(const PrimFunc& lowered, LowerStats* stats)
{
    TIR_CHECK(isBlockFree(lowered->body))
        << "elideRedundantSync expects a lowered (block-free) function";
    trace::Span span("lower.elide_redundant_sync",
                     trace::arg("func", lowered->name));
    analysis::DataflowInfo info = analysis::computeDataflow(lowered);
    if (info.truncated) return lowered;
    std::set<const StmtNode*> kill;
    for (const analysis::SyncDataflow& sync : info.syncs) {
        if (sync.elidable && sync.site->stmt) {
            kill.insert(sync.site->stmt);
        }
    }
    int removed = 0;
    PrimFunc result = stripStmts(lowered, std::move(kill), &removed);
    if (removed > 0) {
        trace::counterAdd("lower.syncs_elided", removed);
        if (stats) stats->syncs_elided += removed;
    }
    return result;
}

PrimFunc
eliminateDeadStores(const PrimFunc& lowered, LowerStats* stats)
{
    TIR_CHECK(isBlockFree(lowered->body))
        << "eliminateDeadStores expects a lowered (block-free) function";
    trace::Span span("lower.eliminate_dead_stores",
                     trace::arg("func", lowered->name));
    // Fixpoint: removing a store also removes the loads feeding it,
    // which can kill the stores those loads were keeping alive
    // (staging-copy chains die back-to-front). Bounded — each round
    // removes at least one statement or stops.
    constexpr int kMaxRounds = 8;
    PrimFunc func = lowered;
    for (int round = 0; round < kMaxRounds; ++round) {
        analysis::DataflowInfo info = analysis::computeDataflow(func);
        if (info.truncated) break;
        std::set<const StmtNode*> kill;
        for (const analysis::AccessSite* d : info.dead_stores) {
            if (d->stmt) kill.insert(d->stmt);
        }
        int removed = 0;
        func = stripStmts(func, std::move(kill), &removed);
        if (removed == 0) break;
        trace::counterAdd("lower.stores_eliminated", removed);
        if (stats) stats->stores_eliminated += removed;
    }
    return func;
}

PrimFunc
lowerWithOptions(const PrimFunc& func, const LowerOptions& options,
                 LowerStats* stats)
{
    PrimFunc lowered =
        isBlockFree(func->body) ? func : lowerToLoops(func);
    if (options.insert_storage_sync) {
        lowered = insertStorageSync(lowered);
    }
    if (options.elide_redundant_sync) {
        lowered = elideRedundantSync(lowered, stats);
    }
    if (options.eliminate_dead_stores) {
        lowered = eliminateDeadStores(lowered, stats);
    }
    return lowered;
}

} // namespace tir
