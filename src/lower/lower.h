/**
 * @file
 * Lowering: erase blocks from a scheduled TensorIR function, producing a
 * plain imperative loop nest suitable for code generation. Block
 * iterators are substituted with their binding values, reduction init
 * statements become first-iteration guards, and realize predicates
 * become If statements — the "low-level code generation" step the paper
 * hands programs to after scheduling.
 */
#ifndef TENSORIR_LOWER_LOWER_H
#define TENSORIR_LOWER_LOWER_H

#include "ir/stmt.h"

namespace tir {

/**
 * Lower a function to block-free imperative form. The result contains
 * no Block/BlockRealize nodes; it computes exactly the same values
 * (checked in the test suite via the interpreter).
 */
PrimFunc lowerToLoops(const PrimFunc& func);

/** Lower one statement subtree to block-free form (same rewrite as
 *  lowerToLoops, without requiring a whole function). Used by analyses
 *  that inspect individual pipeline stages. */
Stmt eraseBlocks(const Stmt& stmt);

/** True when a statement tree contains no blocks. */
bool isBlockFree(const Stmt& stmt);

/**
 * Insert storage-sync barriers into a lowered (block-free) function:
 * between statements of a sequence whenever a later statement touches a
 * shared-scope buffer an earlier one wrote, and at the top of any serial
 * loop inside a thread launch whose body both writes and reads shared
 * buffers (the staged-pipeline loop-carried hazard). Barriers are never
 * placed under thread-divergent conditionals. Idempotent: existing
 * barriers satisfy the dependency and suppress duplicates.
 */
PrimFunc insertStorageSync(const PrimFunc& lowered);

/** Pipeline knobs of lowerWithOptions. The analysis-driven
 *  optimizations default off: they are opt-in per call site, and every
 *  rewrite they emit is one the dataflow framework
 *  (tir/analysis/dataflow.h) proves safe. */
struct LowerOptions
{
    /** Run insertStorageSync after lowering. */
    bool insert_storage_sync = false;
    /** Drop barriers whose protected pair set is empty (TIR-L003). */
    bool elide_redundant_sync = false;
    /** Drop stores no later or loop-carried read observes
     *  (TIR-L002), iterated to a fixpoint. */
    bool eliminate_dead_stores = false;
};

/** What the optimization passes did (accumulated across passes). */
struct LowerStats
{
    int syncs_elided = 0;
    int stores_eliminated = 0;
};

/**
 * Remove storage-sync barriers the dataflow analysis proves redundant:
 * every access pair a dropped barrier spans is provably ordered,
 * disjoint, or still separated by a kept barrier (greedy left-to-right
 * elision over barrierLoadBearing verdicts). Keeps everything when the
 * analysis is truncated. Expects a lowered (block-free) function.
 */
PrimFunc elideRedundantSync(const PrimFunc& lowered,
                            LowerStats* stats = nullptr);

/**
 * Remove stores the dataflow analysis proves dead — writes to
 * non-parameter buffers no later or loop-carried read may observe —
 * iterated to a fixpoint (a removed store can kill the reads that kept
 * an earlier store alive). Loops and conditionals left empty by the
 * removal are pruned. Expects a lowered (block-free) function.
 */
PrimFunc eliminateDeadStores(const PrimFunc& lowered,
                             LowerStats* stats = nullptr);

/**
 * Full lowering pipeline: lowerToLoops, then the passes `options`
 * enables, in order: insertStorageSync, elideRedundantSync,
 * eliminateDeadStores. `stats`, when given, accumulates what the
 * optimization passes removed.
 */
PrimFunc lowerWithOptions(const PrimFunc& func,
                          const LowerOptions& options,
                          LowerStats* stats = nullptr);

} // namespace tir

#endif // TENSORIR_LOWER_LOWER_H
