/**
 * @file
 * Lowering: erase blocks from a scheduled TensorIR function, producing a
 * plain imperative loop nest suitable for code generation. Block
 * iterators are substituted with their binding values, reduction init
 * statements become first-iteration guards, and realize predicates
 * become If statements — the "low-level code generation" step the paper
 * hands programs to after scheduling.
 */
#ifndef TENSORIR_LOWER_LOWER_H
#define TENSORIR_LOWER_LOWER_H

#include "ir/stmt.h"

namespace tir {

/**
 * Lower a function to block-free imperative form. The result contains
 * no Block/BlockRealize nodes; it computes exactly the same values
 * (checked in the test suite via the interpreter).
 */
PrimFunc lowerToLoops(const PrimFunc& func);

/** True when a statement tree contains no blocks. */
bool isBlockFree(const Stmt& stmt);

} // namespace tir

#endif // TENSORIR_LOWER_LOWER_H
