/**
 * @file
 * Lowering: erase blocks from a scheduled TensorIR function, producing a
 * plain imperative loop nest suitable for code generation. Block
 * iterators are substituted with their binding values, reduction init
 * statements become first-iteration guards, and realize predicates
 * become If statements — the "low-level code generation" step the paper
 * hands programs to after scheduling.
 */
#ifndef TENSORIR_LOWER_LOWER_H
#define TENSORIR_LOWER_LOWER_H

#include "ir/stmt.h"

namespace tir {

/**
 * Lower a function to block-free imperative form. The result contains
 * no Block/BlockRealize nodes; it computes exactly the same values
 * (checked in the test suite via the interpreter).
 */
PrimFunc lowerToLoops(const PrimFunc& func);

/** Lower one statement subtree to block-free form (same rewrite as
 *  lowerToLoops, without requiring a whole function). Used by analyses
 *  that inspect individual pipeline stages. */
Stmt eraseBlocks(const Stmt& stmt);

/** True when a statement tree contains no blocks. */
bool isBlockFree(const Stmt& stmt);

/**
 * Insert storage-sync barriers into a lowered (block-free) function:
 * between statements of a sequence whenever a later statement touches a
 * shared-scope buffer an earlier one wrote, and at the top of any serial
 * loop inside a thread launch whose body both writes and reads shared
 * buffers (the staged-pipeline loop-carried hazard). Barriers are never
 * placed under thread-divergent conditionals. Idempotent: existing
 * barriers satisfy the dependency and suppress duplicates.
 */
PrimFunc insertStorageSync(const PrimFunc& lowered);

} // namespace tir

#endif // TENSORIR_LOWER_LOWER_H
