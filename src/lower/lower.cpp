#include "lower/lower.h"

#include "arith/analyzer.h"
#include "ir/functor.h"
#include "ir/transform.h"
#include "support/trace.h"

namespace tir {

namespace {

/** Replaces every BlockRealize with its substituted body. */
class BlockEraser : public StmtExprMutator
{
  public:
    Stmt
    mutateBlockRealize(const Stmt& s) override
    {
        const auto& n = static_cast<const BlockRealizeNode&>(*s);
        const BlockNode& block = *n.block;

        // Substitute block iterators with their binding values.
        VarMap vmap;
        for (size_t i = 0; i < block.iter_vars.size(); ++i) {
            vmap[block.iter_vars[i].var.get()] =
                mutateExpr(n.iter_values[i]);
        }
        Stmt body = substitute(block.body, vmap);
        body = mutateStmt(body); // lower nested blocks

        if (block.init) {
            // The init runs on the first iteration of every reduction
            // axis: guard with (binding == dom.min) conjunctions.
            Expr guard = intImm(1, DataType::boolean());
            for (size_t i = 0; i < block.iter_vars.size(); ++i) {
                const IterVar& iv = block.iter_vars[i];
                if (iv.type != IterType::kReduce) continue;
                guard = land(guard, eq(vmap.at(iv.var.get()),
                                       iv.dom.min));
            }
            Stmt init = substitute(block.init, vmap);
            init = mutateStmt(init);
            arith::Analyzer analyzer;
            guard = analyzer.simplify(guard);
            if (constIntOr(guard, 0) == 1) {
                body = seq({init, body});
            } else {
                body = seq({ifThenElse(guard, init), body});
            }
        }

        int64_t predicate = constIntOr(n.predicate, -1);
        if (predicate != 1) {
            body = ifThenElse(mutateExpr(n.predicate), body);
        }
        return body;
    }
};

class BlockFinder : public StmtExprVisitor
{
  public:
    bool found = false;

    void
    visitStmt(const Stmt& s) override
    {
        if (s->kind == StmtKind::kBlock ||
            s->kind == StmtKind::kBlockRealize) {
            found = true;
        }
        if (!found) StmtExprVisitor::visitStmt(s);
    }
};

} // namespace

PrimFunc
lowerToLoops(const PrimFunc& func)
{
    trace::Span span("lower.to_loops",
                     trace::arg("func", func->name));
    BlockEraser eraser;
    Stmt body = eraser.mutateStmt(func->body);
    return makeFunc(func->name, func->params, body, func->attrs);
}

Stmt
eraseBlocks(const Stmt& stmt)
{
    BlockEraser eraser;
    return eraser.mutateStmt(stmt);
}

bool
isBlockFree(const Stmt& stmt)
{
    BlockFinder finder;
    finder.visitStmt(stmt);
    return !finder.found;
}

} // namespace tir
