/**
 * @file
 * Tensor intrinsics (§4.1). A TensorIntrin pairs a *description* — a loop
 * nest with a scalar block giving the computation semantics — with an
 * *implementation* — an opaque statement invoking the hardware primitive.
 * Data type, storage scope, and shape constraints are carried by the
 * parameter buffers and checked during tensorize.
 */
#ifndef TENSORIR_INTRIN_TENSOR_INTRIN_H
#define TENSORIR_INTRIN_TENSOR_INTRIN_H

#include <string>
#include <vector>

#include "ir/stmt.h"

namespace tir {

/** A registered tensor computation intrinsic. */
class TensorIntrin
{
  public:
    std::string name;
    /** Parameter buffers (inputs first, output last); their scopes encode
     *  the storage-scope constraints of the hardware primitive. */
    std::vector<Buffer> params;
    /** Semantics: loop nest + scalar block over `params`. */
    Stmt desc;
    /** Implementation: statement with opaque calls over `params`. */
    Stmt impl;

    // --- Metadata used by the auto-scheduler and hardware model ---------

    /** Compute unit keyword for the hardware model ("tensor_core",
     *  "dot4", "sdot", ...). */
    std::string compute_unit;
    /** Execution scope requirement ("thread" or "warp"). */
    std::string exec_scope = "thread";
    /** Multiply-accumulate operations performed per invocation. */
    int64_t macs = 0;
    /** Tile shape (m, n, k) for matmul-style intrinsics. */
    int64_t tile_m = 1;
    int64_t tile_n = 1;
    int64_t tile_k = 1;
    /** Input/accumulator dtypes. */
    DataType in_dtype = DataType::f16();
    DataType acc_dtype = DataType::f16();

    /** Register an intrinsic (replacing any previous definition). */
    static void registerIntrin(TensorIntrin intrin);
    /** Look up a registered intrinsic (fatal when missing). */
    static const TensorIntrin& get(const std::string& name);
    /** Whether an intrinsic with this name is registered. */
    static bool exists(const std::string& name);
    /** Names of all registered intrinsics. */
    static std::vector<std::string> list();
};

/**
 * Register the built-in intrinsics (idempotent):
 *  - "accel_dot_4x4x4": the paper's Figure 8 synthetic 4x4x4 matmul
 *    backed by a dot-product instruction (fp32).
 *  - "wmma_16x16x16_f16": Tensor-Core style 16x16x16 mma (fp16) with
 *    wmma.matrix_a/b and wmma.accumulator storage scopes, warp scope.
 *  - "arm_sdot_1x1x4": ARM `sdot`-style 4-way int8 dot with int32
 *    accumulation.
 *  - "arm_smmla_2x2x8": ARM `smmla`-style 2x2x8 int8 matrix MAC.
 * Also registers the interpreter semantics for their opaque calls.
 */
void registerBuiltinIntrinsics();

/**
 * Build a matmul TensorIntrin description programmatically: developers
 * declare new hardware primitives with one call (this is the paper's
 * "provide the description of the tensor intrinsic to the system").
 */
TensorIntrin makeMatmulIntrin(const std::string& name, int64_t m,
                              int64_t n, int64_t k, DataType in_dtype,
                              DataType acc_dtype,
                              const std::string& scope_a,
                              const std::string& scope_b,
                              const std::string& scope_c,
                              const std::string& call_op,
                              const std::string& compute_unit,
                              const std::string& exec_scope);

} // namespace tir

#endif // TENSORIR_INTRIN_TENSOR_INTRIN_H
