#include "intrin/tensor_intrin.h"

#include <map>

#include "runtime/interpreter.h"

namespace tir {

namespace {

std::map<std::string, TensorIntrin>&
intrinRegistry()
{
    static std::map<std::string, TensorIntrin> registry;
    return registry;
}

} // namespace

void
TensorIntrin::registerIntrin(TensorIntrin intrin)
{
    TIR_CHECK(!intrin.name.empty()) << "intrinsic needs a name";
    intrinRegistry()[intrin.name] = std::move(intrin);
}

const TensorIntrin&
TensorIntrin::get(const std::string& name)
{
    registerBuiltinIntrinsics();
    auto it = intrinRegistry().find(name);
    TIR_CHECK(it != intrinRegistry().end())
        << "no tensor intrinsic named " << name;
    return it->second;
}

bool
TensorIntrin::exists(const std::string& name)
{
    registerBuiltinIntrinsics();
    return intrinRegistry().count(name) > 0;
}

std::vector<std::string>
TensorIntrin::list()
{
    registerBuiltinIntrinsics();
    std::vector<std::string> names;
    for (const auto& [name, intrin] : intrinRegistry()) {
        names.push_back(name);
    }
    return names;
}

TensorIntrin
makeMatmulIntrin(const std::string& name, int64_t m, int64_t n, int64_t k,
                 DataType in_dtype, DataType acc_dtype,
                 const std::string& scope_a, const std::string& scope_b,
                 const std::string& scope_c, const std::string& call_op,
                 const std::string& compute_unit,
                 const std::string& exec_scope)
{
    Buffer a = makeBuffer(name + "_A", {m, k}, in_dtype, scope_a);
    Buffer b = makeBuffer(name + "_B", {k, n}, in_dtype, scope_b);
    Buffer c = makeBuffer(name + "_C", {m, n}, acc_dtype, scope_c);

    // Description: plain loop nest + scalar block (C += A * B).
    Var li = var("i");
    Var lj = var("j");
    Var lk = var("k");
    Var vi = var("vi");
    Var vj = var("vj");
    Var vk = var("vk");
    Expr lhs = bufferLoad(a, {Expr(vi), Expr(vk)});
    Expr rhs = bufferLoad(b, {Expr(vk), Expr(vj)});
    if (in_dtype != acc_dtype) {
        lhs = cast(acc_dtype, lhs);
        rhs = cast(acc_dtype, rhs);
    }
    Stmt update = bufferStore(
        c, bufferLoad(c, {Expr(vi), Expr(vj)}) + lhs * rhs,
        {Expr(vi), Expr(vj)});
    std::vector<Range> point_c = {Range(Expr(vi), intImm(1)),
                                  Range(Expr(vj), intImm(1))};
    BlockPtr block = makeBlock(
        name + "_desc",
        {IterVar(vi, Range::fromExtent(m), IterType::kSpatial),
         IterVar(vj, Range::fromExtent(n), IterType::kSpatial),
         IterVar(vk, Range::fromExtent(k), IterType::kReduce)},
        {BufferRegion(a, {Range(Expr(vi), intImm(1)),
                          Range(Expr(vk), intImm(1))}),
         BufferRegion(b, {Range(Expr(vk), intImm(1)),
                          Range(Expr(vj), intImm(1))})},
        {BufferRegion(c, point_c)}, update);
    Stmt desc = blockRealize({Expr(li), Expr(lj), Expr(lk)},
                             intImm(1, DataType::boolean()), block);
    desc = makeFor(lk, intImm(0), intImm(k), desc);
    desc = makeFor(lj, intImm(0), intImm(n), desc);
    desc = makeFor(li, intImm(0), intImm(m), desc);

    // Implementation: one opaque call on the parameter tiles.
    Stmt impl = evaluate(call(DataType::handle(), call_op,
                              {bufferPtr(c, {intImm(0), intImm(0)}),
                               bufferPtr(a, {intImm(0), intImm(0)}),
                               bufferPtr(b, {intImm(0), intImm(0)})}));

    TensorIntrin intrin;
    intrin.name = name;
    intrin.params = {a, b, c};
    intrin.desc = desc;
    intrin.impl = impl;
    intrin.compute_unit = compute_unit;
    intrin.exec_scope = exec_scope;
    intrin.macs = m * n * k;
    intrin.tile_m = m;
    intrin.tile_n = n;
    intrin.tile_k = k;
    intrin.in_dtype = in_dtype;
    intrin.acc_dtype = acc_dtype;
    return intrin;
}

namespace {

/** Row stride of a 2D tile living inside `ref`'s buffer. */
int64_t
rowStride(const runtime::BufferRef& ref)
{
    TIR_CHECK(ref.buffer->ndim() >= 1);
    return ref.buffer->shapeInt(ref.buffer->ndim() - 1);
}

/** Generic m*n*k tile multiply-accumulate on resolved buffer refs. */
void
tileMma(runtime::ExecContext& interp, const CallNode& call, int64_t m,
        int64_t n, int64_t k)
{
    runtime::BufferRef c = interp.resolvePtr(call.args[0]);
    runtime::BufferRef a = interp.resolvePtr(call.args[1]);
    runtime::BufferRef b = interp.resolvePtr(call.args[2]);
    int64_t sc = rowStride(c);
    int64_t sa = rowStride(a);
    int64_t sb = rowStride(b);
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            double acc = 0;
            for (int64_t kk = 0; kk < k; ++kk) {
                acc += a.array->at(a.offset + i * sa + kk) *
                       b.array->at(b.offset + kk * sb + j);
            }
            c.array->at(c.offset + i * sc + j) += acc;
        }
    }
}

bool builtins_registered = false;

} // namespace

void
registerBuiltinIntrinsics()
{
    if (builtins_registered) return;
    builtins_registered = true;

    using runtime::ExecContext;
    using runtime::Interpreter;

    // The paper's Figure 8 synthetic accelerator: 4x4x4 fp32 matmul
    // implemented with a dot-product instruction.
    TensorIntrin::registerIntrin(makeMatmulIntrin(
        "accel_dot_4x4x4", 4, 4, 4, DataType::f32(), DataType::f32(),
        "any", "any", "any", "accel.tile_mma_4x4x4", "dot4",
        "thread"));
    Interpreter::registerIntrinsic(
        "accel.tile_mma_4x4x4",
        [](ExecContext& interp, const CallNode& call) {
            tileMma(interp, call, 4, 4, 4);
        });

    // Tensor-Core style warp-level 16x16x16 fp16 mma with dedicated
    // register-file scopes.
    TensorIntrin::registerIntrin(makeMatmulIntrin(
        "wmma_16x16x16_f16", 16, 16, 16, DataType::f16(),
        DataType::f16(), "wmma.matrix_a", "wmma.matrix_b",
        "wmma.accumulator", "wmma.mma_sync_16x16x16", "tensor_core",
        "warp"));
    Interpreter::registerIntrinsic(
        "wmma.mma_sync_16x16x16",
        [](ExecContext& interp, const CallNode& call) {
            tileMma(interp, call, 16, 16, 16);
        });

    // ARM sdot: 4-way u8/i8 dot product accumulating into i32.
    TensorIntrin::registerIntrin(makeMatmulIntrin(
        "arm_sdot_1x1x4", 1, 1, 4, DataType::i8(), DataType::i32(),
        "any", "any", "any", "arm.sdot_1x1x4", "sdot", "thread"));
    Interpreter::registerIntrinsic(
        "arm.sdot_1x1x4",
        [](ExecContext& interp, const CallNode& call) {
            tileMma(interp, call, 1, 1, 4);
        });

    // ARM smmla-style 2x2x8 int8 matrix multiply-accumulate.
    TensorIntrin::registerIntrin(makeMatmulIntrin(
        "arm_smmla_2x2x8", 2, 2, 8, DataType::i8(), DataType::i32(),
        "any", "any", "any", "arm.smmla_2x2x8", "sdot", "thread"));
    Interpreter::registerIntrinsic(
        "arm.smmla_2x2x8",
        [](ExecContext& interp, const CallNode& call) {
            tileMma(interp, call, 2, 2, 8);
        });

    // ACL-style 8x12 micro-kernel built from sdot lanes (the paper's
    // a64_gemm_u8_8x12 example): amortizes loads over a register tile.
    TensorIntrin::registerIntrin(makeMatmulIntrin(
        "arm_gemm_8x12x4", 8, 12, 4, DataType::i8(), DataType::i32(),
        "any", "any", "any", "arm.gemm_8x12x4", "sdot", "thread"));
    Interpreter::registerIntrinsic(
        "arm.gemm_8x12x4",
        [](ExecContext& interp, const CallNode& call) {
            tileMma(interp, call, 8, 12, 4);
        });
}

} // namespace tir
