/**
 * @file
 * Pin the calling thread to the CPU it is currently on, restoring the
 * previous affinity mask on destruction. Best effort: any syscall
 * failure (or a non-Linux host) leaves affinity untouched — noisier
 * measurements, never a failed one.
 *
 * Fork-safety (audited for the measurement runner): sched_setaffinity
 * is per-thread state, and fork(2) copies the calling thread's
 * affinity into the child. A ScopedCpuPin held across a fork would
 * therefore pin the child to one CPU *and* the child's _exit would
 * skip the restoring destructor in the parent's copy of the stack.
 * The rule in this codebase is: never fork while a pin is active.
 * In isolated measurement mode the pin is taken inside the worker
 * child (runner.cpp), where process exit discards the affinity mask
 * with the process; the in-process path (measure.cpp) takes it only
 * around the timing loop, which performs no fork.
 */
#ifndef TENSORIR_SUPPORT_CPU_PIN_H
#define TENSORIR_SUPPORT_CPU_PIN_H

#if defined(__linux__)
#include <sched.h>
#endif

namespace tir {
namespace support {

class ScopedCpuPin
{
  public:
    explicit ScopedCpuPin(bool enable)
    {
#if defined(__linux__)
        if (!enable) return;
        if (sched_getaffinity(0, sizeof(saved_), &saved_) != 0) return;
        int cpu = sched_getcpu();
        if (cpu < 0) return;
        cpu_set_t one;
        CPU_ZERO(&one);
        CPU_SET(cpu, &one);
        active_ = sched_setaffinity(0, sizeof(one), &one) == 0;
#else
        (void)enable;
#endif
    }

    ~ScopedCpuPin()
    {
#if defined(__linux__)
        if (active_) sched_setaffinity(0, sizeof(saved_), &saved_);
#endif
    }

    ScopedCpuPin(const ScopedCpuPin&) = delete;
    ScopedCpuPin& operator=(const ScopedCpuPin&) = delete;

  private:
#if defined(__linux__)
    cpu_set_t saved_{};
    bool active_ = false;
#endif
};

} // namespace support
} // namespace tir

#endif // TENSORIR_SUPPORT_CPU_PIN_H
