#include "support/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "support/logging.h"
#include "support/rng.h"

namespace tir {
namespace failpoint {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

enum class Action : uint8_t
{
    kThrow,
    kError,
    kDelay,
    kCorrupt,
};

struct SiteConfig
{
    std::string name;
    Action action = Action::kError;
    double probability = 1.0;
    /** delay: milliseconds; corrupt: bytes to flip. */
    double arg = 0;
    /** Counter-keyed sites: evaluations below this index never fire. */
    uint64_t skip = 0;
};

struct SiteState
{
    SiteConfig config;
    uint64_t counter = 0;
    SiteStats stats;
};

struct Registry
{
    std::mutex mutex;
    std::string spec;
    uint64_t seed = 0x5eed;
    std::vector<SiteState> sites;
};

Registry&
registry()
{
    static Registry r;
    return r;
}

/** FNV-1a over the site name: a platform-independent stream id, so a
 *  (seed, site, key) trigger decision reproduces everywhere. */
uint64_t
siteHash(const std::string& name)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char ch : name) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Whether evaluation `index` of `site` fires under `config`. Pure
 *  function of (seed, site name, index) — the determinism contract. */
bool
fires(const Registry& r, const SiteConfig& config, uint64_t index)
{
    if (config.probability <= 0) return false;
    Rng rng = Rng::derive(r.seed, siteHash(config.name), index);
    return rng.randDouble() < config.probability;
}

/** Parse one action token: kind[(p[,arg])][@skip]. */
void
parseAction(const std::string& text, SiteConfig& config)
{
    std::string body = text;
    size_t at = body.rfind('@');
    if (at != std::string::npos) {
        const std::string skip_text = body.substr(at + 1);
        TIR_CHECK(!skip_text.empty() &&
                  skip_text.find_first_not_of("0123456789") ==
                      std::string::npos)
            << "failpoint spec: bad @skip in '" << text << "'";
        config.skip = std::strtoull(skip_text.c_str(), nullptr, 10);
        body = body.substr(0, at);
    }
    std::string kind = body;
    size_t paren = body.find('(');
    if (paren != std::string::npos) {
        TIR_CHECK(body.back() == ')')
            << "failpoint spec: unbalanced parens in '" << text << "'";
        kind = body.substr(0, paren);
        std::string params =
            body.substr(paren + 1, body.size() - paren - 2);
        size_t comma = params.find(',');
        std::string p_text = params.substr(0, comma);
        char* end = nullptr;
        config.probability = std::strtod(p_text.c_str(), &end);
        TIR_CHECK(end && *end == '\0' && config.probability >= 0 &&
                  config.probability <= 1)
            << "failpoint spec: bad probability in '" << text << "'";
        if (comma != std::string::npos) {
            std::string arg_text = params.substr(comma + 1);
            config.arg = std::strtod(arg_text.c_str(), &end);
            TIR_CHECK(end && *end == '\0' && config.arg >= 0)
                << "failpoint spec: bad argument in '" << text << "'";
        }
    }
    if (kind == "throw") {
        config.action = Action::kThrow;
    } else if (kind == "error") {
        config.action = Action::kError;
    } else if (kind == "delay") {
        config.action = Action::kDelay;
        if (config.arg == 0) config.arg = 10; // default 10 ms
    } else if (kind == "corrupt") {
        config.action = Action::kCorrupt;
        if (config.arg == 0) config.arg = 1; // default 1 byte
    } else {
        TIR_FATAL << "failpoint spec: unknown action '" << kind
                  << "' in '" << text << "'";
    }
}

/** Parse a full schedule; throws FatalError without touching state. */
std::pair<uint64_t, std::vector<SiteState>>
parseSpec(const std::string& spec)
{
    uint64_t seed = 0x5eed;
    std::vector<SiteState> sites;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t semi = spec.find(';', pos);
        if (semi == std::string::npos) semi = spec.size();
        std::string entry = spec.substr(pos, semi - pos);
        pos = semi + 1;
        // Trim surrounding whitespace.
        size_t b = entry.find_first_not_of(" \t");
        if (b == std::string::npos) continue;
        size_t e = entry.find_last_not_of(" \t");
        entry = entry.substr(b, e - b + 1);
        size_t eq = entry.find('=');
        TIR_CHECK(eq != std::string::npos && eq > 0)
            << "failpoint spec: expected site=action, got '" << entry
            << "'";
        std::string name = entry.substr(0, eq);
        std::string value = entry.substr(eq + 1);
        if (name == "seed") {
            TIR_CHECK(!value.empty() &&
                      value.find_first_not_of("0123456789") ==
                          std::string::npos)
                << "failpoint spec: bad seed '" << value << "'";
            seed = std::strtoull(value.c_str(), nullptr, 10);
            continue;
        }
        SiteState site;
        site.config.name = name;
        parseAction(value, site.config);
        sites.push_back(std::move(site));
    }
    return {seed, std::move(sites)};
}

/** Look up a site by name; the registry mutex is held by the caller. */
SiteState*
findSite(Registry& r, const char* name)
{
    for (SiteState& site : r.sites) {
        if (site.config.name == name) return &site;
    }
    return nullptr;
}

/** Apply a fired non-corrupt action. Returns true for error-returns. */
bool
applyAction(const SiteConfig& config, uint64_t index)
{
    switch (config.action) {
      case Action::kThrow:
        throw InjectedFault("failpoint '" + config.name +
                            "' fired (evaluation " +
                            std::to_string(index) + ")");
      case Action::kDelay:
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(config.arg));
        return false;
      default:
        // `corrupt` at a plain inject() site degrades to an error
        // return: the caller has no buffer to corrupt.
        return true;
    }
}

/** Reads TENSORIR_FAILPOINTS once at process start; a malformed env
 *  spec warns and disables instead of crashing static init. */
struct EnvSchedule
{
    EnvSchedule()
    {
        try {
            reset();
        } catch (const std::exception& e) {
            std::fprintf(stderr,
                         "tensorir: ignoring TENSORIR_FAILPOINTS: %s\n",
                         e.what());
        }
    }
};
EnvSchedule env_schedule;

} // namespace

bool
evaluate(const char* site_name, bool keyed, uint64_t key)
{
    Registry& r = registry();
    SiteConfig config;
    uint64_t index = 0;
    bool fired = false;
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        SiteState* site = findSite(r, site_name);
        if (!site) return false;
        ++site->stats.evaluated;
        index = keyed ? key : site->counter++;
        bool skipped = !keyed && index < site->config.skip;
        fired = !skipped && fires(r, site->config, index);
        if (fired) ++site->stats.fired;
        config = site->config;
    }
    if (!fired) return false;
    return applyAction(config, index);
}

bool
evaluateCorrupt(const char* site_name, std::string& data)
{
    Registry& r = registry();
    SiteConfig config;
    uint64_t index = 0;
    uint64_t seed = 0;
    bool fired = false;
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        SiteState* site = findSite(r, site_name);
        if (!site) return false;
        ++site->stats.evaluated;
        index = site->counter++;
        fired = index >= site->config.skip &&
                fires(r, site->config, index);
        if (fired) ++site->stats.fired;
        config = site->config;
        seed = r.seed;
    }
    if (!fired) return false;
    if (config.action != Action::kCorrupt) return applyAction(config, index);
    if (data.empty()) return true;
    // Flip `arg` bytes at deterministically drawn offsets.
    Rng rng = Rng::derive(seed ^ 0xc0ffee, siteHash(config.name), index);
    int flips = std::max(1, static_cast<int>(config.arg));
    for (int i = 0; i < flips; ++i) {
        size_t at = static_cast<size_t>(
            rng.randInt(static_cast<int64_t>(data.size())));
        data[at] = static_cast<char>(data[at] ^
                                     (1u << rng.randInt(8)));
    }
    return true;
}

} // namespace detail

void
configure(const std::string& spec)
{
    auto [seed, sites] = detail::parseSpec(spec); // throws on bad spec
    detail::Registry& r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.spec = spec;
    r.seed = seed;
    r.sites = std::move(sites);
    detail::g_enabled.store(!r.sites.empty(),
                            std::memory_order_release);
}

void
reset()
{
    const char* env = std::getenv("TENSORIR_FAILPOINTS");
    configure(env ? env : "");
}

std::string
currentSpec()
{
    detail::Registry& r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.spec;
}

SiteStats
stats(const std::string& site)
{
    detail::Registry& r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (const detail::SiteState& s : r.sites) {
        if (s.config.name == site) return s.stats;
    }
    return {};
}

std::vector<std::pair<std::string, SiteStats>>
allStats()
{
    detail::Registry& r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::pair<std::string, SiteStats>> out;
    for (const detail::SiteState& s : r.sites) {
        out.emplace_back(s.config.name, s.stats);
    }
    return out;
}

} // namespace failpoint
} // namespace tir
