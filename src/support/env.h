/**
 * @file
 * Strict environment-variable parsing, shared by every TENSORIR_* knob
 * that takes a number or a flag. History says std::atoi here is a bug
 * factory: it mapped garbage ("abc", "8x") and overflow to 0 or
 * undefined behaviour and silently fell through to a default, so a
 * typo'd setting quietly changed the thread count or cache bound
 * instead of failing. These helpers reject loudly: a set-but-malformed
 * variable raises FatalError naming the variable and the offending
 * value; only an *unset or empty* variable yields the fallback.
 *
 * Numeric grammar: decimal digits only (no sign, no whitespace, no
 * suffix), checked before strtoull so a leading '-' cannot wrap to a
 * huge positive value, then an ERANGE check, then a caller-supplied
 * [min, max] range check.
 *
 * Flag grammar: exactly "1"/"on" (true) or "0"/"off" (false).
 */
#ifndef TENSORIR_SUPPORT_ENV_H
#define TENSORIR_SUPPORT_ENV_H

#include <cstdint>
#include <limits>

namespace tir {
namespace support {

/** Parse env var `name` as an unsigned integer in [min_value,
 *  max_value]. Unset or empty returns `fallback` (which is not range
 *  checked — callers own their defaults). Garbage, a sign character,
 *  overflow, or an out-of-range value raise FatalError. */
uint64_t envUint(const char* name, uint64_t fallback,
                 uint64_t min_value = 0,
                 uint64_t max_value =
                     std::numeric_limits<uint64_t>::max());

/** Parse env var `name` as a flag: "1"/"on" → true, "0"/"off" → false.
 *  Unset or empty returns `fallback`; anything else ("true", "yes",
 *  "ON", …) raises FatalError — an unrecognised spelling must not
 *  silently pick a default with a different meaning. */
bool envFlag(const char* name, bool fallback);

} // namespace support
} // namespace tir

#endif // TENSORIR_SUPPORT_ENV_H
