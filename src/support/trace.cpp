#include "support/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "support/logging.h"

namespace tir {
namespace trace {

namespace detail {

std::atomic<bool> g_enabled{false};

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace {

/** One recorded event, pending export. */
struct Event
{
    const char* name = nullptr; // always a string literal
    std::string args;           // rendered `"k":v` fragments, or empty
    uint64_t ts_ns = 0;         // absolute steady-clock time
    uint64_t dur_ns = 0;        // spans only
    double value = 0;           // counters/gauges only
    char phase = 'X';           // 'X' span, 'C' counter, 'i' instant
    char category = 's';        // 's' span, 'c' counter, 'g' gauge
};

/** Per-thread event buffer, owned by the collector. */
struct ThreadBuffer
{
    uint32_t tid = 0;
    std::vector<Event> events;
    uint64_t dropped = 0;
};

/** Cap per-thread buffers so a runaway session cannot exhaust memory;
 *  overflow is counted and reported in the summary instead. */
constexpr size_t kMaxEventsPerThread = size_t{1} << 22;

struct Collector
{
    std::mutex mutex;
    std::string path;
    uint64_t session = 0;       // bumped on every start(); 0 = never
    uint64_t start_ns = 0;      // session epoch
    std::vector<std::unique_ptr<ThreadBuffer>> buffers;
    std::map<std::string, int64_t> counter_totals;
};

Collector&
collector()
{
    static Collector c;
    return c;
}

/** The calling thread's buffer for the active session, registering on
 *  first touch; nullptr when no session is active. */
ThreadBuffer*
threadBuffer()
{
    thread_local ThreadBuffer* cached = nullptr;
    thread_local uint64_t cached_session = 0;
    if (!g_enabled.load(std::memory_order_relaxed)) return nullptr;
    Collector& c = collector();
    if (cached && cached_session == c.session) return cached;
    std::lock_guard<std::mutex> lock(c.mutex);
    if (!g_enabled.load(std::memory_order_relaxed)) return nullptr;
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<uint32_t>(c.buffers.size());
    cached = buffer.get();
    cached_session = c.session;
    c.buffers.push_back(std::move(buffer));
    return cached;
}

void
push(ThreadBuffer* buf, Event event)
{
    if (buf->events.size() >= kMaxEventsPerThread) {
        ++buf->dropped;
        return;
    }
    buf->events.push_back(std::move(event));
}

/** Minimal JSON string escaping for names and pre-rendered args. */
std::string
escapeJson(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (char ch : text) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", ch);
                out += hex;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

const char*
categoryName(char category)
{
    switch (category) {
      case 'c': return "counter";
      case 'g': return "gauge";
      default: return "span";
    }
}

/** Write the Chrome trace-event file. Caller holds the mutex. */
void
writeJsonLocked(Collector& c)
{
    std::FILE* out = std::fopen(c.path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr,
                     "tensorir: cannot write trace to %s\n",
                     c.path.c_str());
        return;
    }
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", out);
    bool first = true;
    auto emit = [&](const std::string& line) {
        if (!first) std::fputs(",\n", out);
        first = false;
        std::fputs(line.c_str(), out);
    };
    for (const auto& buf : c.buffers) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":%u,\"args\":{\"name\":\"%s-%u\"}}",
                      buf->tid, buf->tid == 0 ? "main" : "worker",
                      buf->tid);
        emit(line);
    }
    for (const auto& buf : c.buffers) {
        for (const Event& e : buf->events) {
            double ts_us =
                static_cast<double>(e.ts_ns - c.start_ns) / 1000.0;
            char head[256];
            std::string line;
            switch (e.phase) {
              case 'X':
                std::snprintf(head, sizeof(head),
                              "{\"name\":\"%s\",\"cat\":\"span\","
                              "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                              "\"pid\":1,\"tid\":%u",
                              e.name, ts_us,
                              static_cast<double>(e.dur_ns) / 1000.0,
                              buf->tid);
                break;
              case 'C':
                std::snprintf(head, sizeof(head),
                              "{\"name\":\"%s\",\"cat\":\"%s\","
                              "\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,"
                              "\"tid\":%u,\"args\":{\"value\":%.17g}}",
                              e.name, categoryName(e.category), ts_us,
                              buf->tid, e.value);
                break;
              default:
                std::snprintf(head, sizeof(head),
                              "{\"name\":\"%s\",\"cat\":\"span\","
                              "\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
                              "\"pid\":1,\"tid\":%u",
                              e.name, ts_us, buf->tid);
            }
            line = head;
            if (e.phase != 'C') {
                if (!e.args.empty()) {
                    line += ",\"args\":{" + e.args + "}";
                }
                line += "}";
            }
            emit(line);
        }
    }
    std::fputs("\n]}\n", out);
    std::fclose(out);
}

/** Starts a session from TENSORIR_TRACE at process start and flushes
 *  it at exit, so any binary can be traced without code changes. */
struct EnvSession
{
    EnvSession()
    {
        const char* path = std::getenv("TENSORIR_TRACE");
        if (path && *path && start(path)) {
            std::atexit([] { stop(); });
        }
    }
};
EnvSession env_session;

} // namespace

void
emitSpan(const char* name, uint64_t start_ns, std::string args)
{
    ThreadBuffer* buf = threadBuffer();
    if (!buf) return; // session ended while the span was open
    Event event;
    event.name = name;
    event.args = std::move(args);
    event.ts_ns = start_ns;
    event.dur_ns = nowNs() - start_ns;
    event.phase = 'X';
    push(buf, std::move(event));
}

} // namespace detail

bool
start(const std::string& path)
{
    TIR_CHECK(!path.empty()) << "trace session needs an output path";
    detail::Collector& c = detail::collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    if (detail::g_enabled.load(std::memory_order_relaxed)) return false;
    c.path = path;
    ++c.session;
    c.start_ns = detail::nowNs();
    c.buffers.clear();
    c.counter_totals.clear();
    detail::g_enabled.store(true, std::memory_order_release);
    return true;
}

void
stop()
{
    detail::Collector& c = detail::collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
    // Disable before writing so a (misbehaving) concurrent hook drops
    // its event instead of appending to a buffer being exported.
    detail::g_enabled.store(false, std::memory_order_release);
    detail::writeJsonLocked(c);
    c.buffers.clear();
    c.counter_totals.clear();
    c.path.clear();
}

void
counterAdd(const char* name, int64_t delta)
{
    if (!enabled()) return;
    detail::ThreadBuffer* buf = detail::threadBuffer();
    if (!buf) return;
    detail::Collector& c = detail::collector();
    int64_t total = 0;
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        total = (c.counter_totals[name] += delta);
    }
    detail::Event event;
    event.name = name;
    event.ts_ns = detail::nowNs();
    event.value = static_cast<double>(total);
    event.phase = 'C';
    event.category = 'c';
    detail::push(buf, std::move(event));
}

void
gauge(const char* name, double value)
{
    if (!enabled()) return;
    detail::ThreadBuffer* buf = detail::threadBuffer();
    if (!buf) return;
    detail::Event event;
    event.name = name;
    event.ts_ns = detail::nowNs();
    event.value = value;
    event.phase = 'C';
    event.category = 'g';
    detail::push(buf, std::move(event));
}

void
instant(const char* name, std::string args)
{
    if (!enabled()) return;
    detail::ThreadBuffer* buf = detail::threadBuffer();
    if (!buf) return;
    detail::Event event;
    event.name = name;
    event.args = std::move(args);
    event.ts_ns = detail::nowNs();
    event.phase = 'i';
    detail::push(buf, std::move(event));
}

std::string
summaryText()
{
    detail::Collector& c = detail::collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    if (!detail::g_enabled.load(std::memory_order_relaxed)) return "";
    struct SpanStat
    {
        int64_t calls = 0;
        uint64_t total_ns = 0;
    };
    std::map<std::string, SpanStat> spans;
    // Latest sample per gauge name (by timestamp, across threads).
    std::map<std::string, std::pair<uint64_t, double>> gauge_last;
    uint64_t dropped = 0;
    for (const auto& buf : c.buffers) {
        dropped += buf->dropped;
        for (const detail::Event& e : buf->events) {
            if (e.phase == 'X') {
                SpanStat& stat = spans[e.name];
                ++stat.calls;
                stat.total_ns += e.dur_ns;
            } else if (e.phase == 'C' && e.category == 'g') {
                auto& slot = gauge_last[e.name];
                if (e.ts_ns >= slot.first) slot = {e.ts_ns, e.value};
            }
        }
    }
    std::vector<std::pair<std::string, SpanStat>> ordered(
        spans.begin(), spans.end());
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const auto& a, const auto& b) {
                         return a.second.total_ns > b.second.total_ns;
                     });
    std::string text = "trace summary (" + c.path + "):\n";
    char line[256];
    std::snprintf(line, sizeof(line), "  %-34s %9s %12s %12s\n",
                  "span", "calls", "total ms", "mean us");
    text += line;
    for (const auto& [name, stat] : ordered) {
        std::snprintf(line, sizeof(line),
                      "  %-34s %9lld %12.3f %12.1f\n", name.c_str(),
                      static_cast<long long>(stat.calls),
                      static_cast<double>(stat.total_ns) / 1e6,
                      static_cast<double>(stat.total_ns) / 1e3 /
                          static_cast<double>(stat.calls));
        text += line;
    }
    for (const auto& [name, total] : c.counter_totals) {
        std::snprintf(line, sizeof(line), "  counter %-26s %9lld\n",
                      name.c_str(), static_cast<long long>(total));
        text += line;
    }
    for (const auto& [name, sample] : gauge_last) {
        std::snprintf(line, sizeof(line), "  gauge   %-26s %9.4g\n",
                      name.c_str(), sample.second);
        text += line;
    }
    if (dropped > 0) {
        std::snprintf(line, sizeof(line),
                      "  (%llu events dropped at the per-thread cap)\n",
                      static_cast<unsigned long long>(dropped));
        text += line;
    }
    return text;
}

std::string
arg(const char* key, int64_t value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"%s\":%lld", key,
                  static_cast<long long>(value));
    return buf;
}

std::string
arg(const char* key, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"%s\":%.17g", key, value);
    return buf;
}

std::string
arg(const char* key, const std::string& value)
{
    return "\"" + std::string(key) + "\":\"" +
           detail::escapeJson(value) + "\"";
}

} // namespace trace
} // namespace tir
