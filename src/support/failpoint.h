/**
 * @file
 * Failpoint framework: named, deterministically seeded fault-injection
 * sites for exercising the tuning pipeline's containment paths (the
 * same technique TiKV's `fail` crate and FreeBSD's FAIL_POINT macros
 * use). A site is a call like
 *
 *     if (failpoint::inject("search.instantiate", key)) { ...error... }
 *
 * sprinkled through search, cost-model fitting, database I/O, the
 * interpreter, journaling, and thread-pool dispatch. With no schedule
 * configured, every site is one relaxed atomic load and a branch — the
 * same zero-cost-when-disabled fast path as trace.h — so sites can
 * live in hot per-candidate code.
 *
 * Configuration is a schedule string, from the `TENSORIR_FAILPOINTS`
 * environment variable or `failpoint::configure()`:
 *
 *     spec    := entry (';' entry)*
 *     entry   := 'seed=' <uint64>  |  <site> '=' action
 *     action  := kind [ '(' p [',' arg] ')' ] [ '@' skip ]
 *     kind    := 'throw' | 'error' | 'delay' | 'corrupt'
 *
 * `p` is the trigger probability in [0, 1] (default 1). `arg` is the
 * delay in milliseconds for `delay` (default 10) and the number of
 * bytes to flip for `corrupt` (default 1). `@skip` suppresses the
 * first `skip` evaluations of a counter-keyed site — the tool behind
 * "crash exactly at the N-th checkpoint" tests.
 *
 * Determinism: whether evaluation `i` of a site fires is a pure
 * function of (schedule seed, site name, i). Counter-keyed sites use a
 * per-site atomic counter for `i` — reproducible for a fixed call
 * sequence. Data-keyed sites (`inject(site, key)`) use a caller-chosen
 * key (a candidate's schedule seed or structural hash) instead, so the
 * *same candidates* fail no matter how work is distributed over
 * threads — that is what keeps the search's parallelism-invariance
 * contract intact under chaos schedules.
 *
 * Actions at a fired site:
 *  - `throw`   — throw failpoint::InjectedFault (a std::runtime_error).
 *  - `error`   — inject() returns true; the caller takes its own error
 *                path (a structured reject, a skipped write, ...).
 *  - `delay`   — sleep `arg` milliseconds, then behave as not-fired
 *                (for watchdog and timeout testing).
 *  - `corrupt` — at injectCorrupt() sites, flip `arg` deterministically
 *                chosen bytes of the caller's buffer; at plain inject()
 *                sites, degrade to `error`.
 */
#ifndef TENSORIR_SUPPORT_FAILPOINT_H
#define TENSORIR_SUPPORT_FAILPOINT_H

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace tir {
namespace failpoint {

namespace detail {
/** Any site configured; the fast path every site checks first. */
extern std::atomic<bool> g_enabled;
bool evaluate(const char* site, bool keyed, uint64_t key);
bool evaluateCorrupt(const char* site, std::string& data);
} // namespace detail

/** Exception thrown by a fired `throw` action. */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string& msg)
        : std::runtime_error(msg)
    {
    }
};

/** Whether any failpoint schedule is active (one relaxed load). */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/**
 * Evaluate a counter-keyed site: the i-th call (process-wide, in call
 * order) triggers deterministically for the configured seed. Returns
 * true when an `error`/`corrupt` action fired; throws for `throw`;
 * sleeps for `delay`. Always false when no schedule is active.
 */
inline bool
inject(const char* site)
{
    if (!enabled()) return false;
    return detail::evaluate(site, /*keyed=*/false, 0);
}

/**
 * Evaluate a data-keyed site: triggering is a pure function of
 * (seed, site, key), independent of call order and thread placement.
 * Use the candidate's own identity (schedule seed, structural hash) as
 * the key so chaos schedules preserve the search's determinism
 * contract across `parallelism` settings.
 */
inline bool
inject(const char* site, uint64_t key)
{
    if (!enabled()) return false;
    return detail::evaluate(site, /*keyed=*/true, key);
}

/**
 * Corruption-capable site (counter-keyed): when a `corrupt` action
 * fires, flips deterministically chosen bytes of `data` in place and
 * returns true. `throw`/`error`/`delay` actions behave as in inject().
 */
inline bool
injectCorrupt(const char* site, std::string& data)
{
    if (!enabled()) return false;
    return detail::evaluateCorrupt(site, data);
}

/**
 * Replace the active schedule with `spec` (parsed per the grammar
 * above; throws FatalError on a malformed spec, leaving the previous
 * schedule in place). An empty spec disables all sites. Per-site
 * counters and statistics reset.
 */
void configure(const std::string& spec);

/** Restore the schedule from TENSORIR_FAILPOINTS (empty if unset). */
void reset();

/** The spec string of the active schedule ("" when disabled). */
std::string currentSpec();

/** Evaluation/trigger accounting of one site since configure(). */
struct SiteStats
{
    uint64_t evaluated = 0;
    uint64_t fired = 0;
};

/** Stats for one configured site (zeros for unknown sites). */
SiteStats stats(const std::string& site);

/** Stats for every configured site, in spec order. */
std::vector<std::pair<std::string, SiteStats>> allStats();

/** RAII schedule override for tests: configures `spec`, restores the
 *  previous schedule on destruction. */
class ScopedFailpoints
{
  public:
    explicit ScopedFailpoints(const std::string& spec)
        : saved_(currentSpec())
    {
        configure(spec);
    }
    ~ScopedFailpoints() { configure(saved_); }
    ScopedFailpoints(const ScopedFailpoints&) = delete;
    ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;

  private:
    std::string saved_;
};

} // namespace failpoint
} // namespace tir

#endif // TENSORIR_SUPPORT_FAILPOINT_H
