/**
 * @file
 * Exact double round-tripping for line-oriented persistence formats:
 * a double is written as its 16-hex-digit IEEE-754 bit pattern, so a
 * save/load cycle reproduces the value bit for bit (including NaN
 * payloads, signed zero, and subnormals). Shared by the tuning journal
 * (meta/journal.cpp) and the tuning database (meta/database.cpp) so
 * both formats encode latencies identically; a decimal rendering may
 * ride alongside for human readers but is never the parsed value.
 */
#ifndef TENSORIR_SUPPORT_DOUBLE_BITS_H
#define TENSORIR_SUPPORT_DOUBLE_BITS_H

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace tir {
namespace support {

/** The 16-hex-digit IEEE-754 bit pattern of `value`. */
inline std::string
doubleBitsHex(double value)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, bits);
    return buf;
}

/** Parse a doubleBitsHex() string; `*ok` reports whether `hex` was a
 *  well-formed 16-digit lowercase pattern (the value is 0 when not). */
inline double
doubleFromBitsHex(const std::string& hex, bool* ok)
{
    if (hex.size() != 16 ||
        hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
        *ok = false;
        return 0;
    }
    *ok = true;
    uint64_t bits = std::strtoull(hex.c_str(), nullptr, 16);
    double value = 0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

/** Shortest decimal rendering that still identifies the double for a
 *  human reader ("%.17g" guarantees uniqueness; shorter forms win when
 *  they round-trip). Display only — parsers read the bit pattern. */
inline std::string
doubleReadable(double value)
{
    char buf[40];
    for (int precision : {6, 9, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        double back = std::strtod(buf, nullptr);
        uint64_t a = 0;
        uint64_t b = 0;
        std::memcpy(&a, &back, sizeof(a));
        std::memcpy(&b, &value, sizeof(b));
        if (a == b) break;
    }
    return buf;
}

} // namespace support
} // namespace tir

#endif // TENSORIR_SUPPORT_DOUBLE_BITS_H
