/**
 * @file
 * A small fixed-size std::jthread pool used by the parallel tuning
 * pipeline (candidate instantiation, feature extraction, cost-model
 * fitting). Deliberately work-stealing-free: one shared batch with an
 * atomic claim index is all the §4.4 search needs, because every batch
 * is an embarrassingly parallel map over independent candidates.
 *
 * Determinism contract: parallelFor(n, fn) only parallelizes the *order
 * of execution*, never the work itself — fn(i) must be a pure function
 * of i and of state that is read-only for the duration of the call.
 * Callers that fold results do so sequentially, in index order, after
 * parallelFor returns; that is what makes `parallelism=1` and
 * `parallelism=N` produce byte-identical tuning results.
 *
 * parallelFor must be called from the thread that owns the pool (it
 * participates in the batch itself); calling it from inside a worker
 * task would deadlock and is not supported.
 */
#ifndef TENSORIR_SUPPORT_THREAD_POOL_H
#define TENSORIR_SUPPORT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/failpoint.h"
#include "support/logging.h"

namespace tir {
namespace support {

/** Fixed pool of jthreads executing index-batch loops. */
class ThreadPool
{
  public:
    /**
     * Create a pool that runs batches on `threads` threads in total.
     * The calling thread counts as one of them, so `threads = 1` spawns
     * nothing and parallelFor degenerates to an inline loop; `threads =
     * 0` means "one per hardware thread".
     */
    explicit ThreadPool(int threads = 0)
    {
        if (threads <= 0) threads = hardwareParallelism();
        for (int t = 0; t < threads - 1; ++t) {
            workers_.emplace_back(
                [this](std::stop_token st) { workerLoop(st); });
        }
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (std::jthread& w : workers_) w.request_stop();
        }
        batch_ready_.notify_all();
        // Join here, in the destructor body, so every worker has fully
        // returned from batch_ready_.wait (which reacquires mutex_)
        // before the mutex and condition variables are destroyed.
        workers_.clear();
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total threads a batch runs on (including the calling thread). */
    int
    parallelism() const
    {
        return static_cast<int>(workers_.size()) + 1;
    }

    /** The OS-reported hardware thread count (at least 1). */
    static int
    hardwareParallelism()
    {
        unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : static_cast<int>(hw);
    }

    /**
     * Run fn(0) ... fn(n-1), distributed over the pool; returns when all
     * calls finished. The first exception thrown by any fn is rethrown
     * on the calling thread (after the batch drains).
     */
    void
    parallelFor(size_t n, const std::function<void(size_t)>& fn)
    {
        if (n == 0) return;
        if (workers_.empty() || n == 1) {
            for (size_t i = 0; i < n; ++i) fn(i);
            return;
        }
        auto batch = std::make_shared<Batch>();
        batch->fn = &fn;
        batch->n = n;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            TIR_ICHECK(!batch_) << "nested parallelFor is not supported";
            batch_ = batch;
        }
        batch_ready_.notify_all();
        runBatch(*batch);
        {
            std::unique_lock<std::mutex> lock(mutex_);
            batch_done_.wait(lock, [&] {
                return batch->done.load() == batch->n;
            });
            batch_ = nullptr;
        }
        if (batch->error) std::rethrow_exception(batch->error);
    }

  private:
    /** One parallelFor invocation: claim indices until exhausted. */
    struct Batch
    {
        const std::function<void(size_t)>* fn = nullptr;
        size_t n = 0;
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        std::exception_ptr error; // first error; guarded by owner mutex_
    };

    void
    runBatch(Batch& batch)
    {
        for (size_t i = batch.next.fetch_add(1); i < batch.n;
             i = batch.next.fetch_add(1)) {
            try {
                // Inside the try: an injected dispatch fault drains
                // into batch.error like any task exception, instead of
                // escaping a worker thread (which would terminate).
                failpoint::inject("thread_pool.dispatch");
                (*batch.fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!batch.error) batch.error = std::current_exception();
            }
            if (batch.done.fetch_add(1) + 1 == batch.n) {
                // Lock so the notify cannot slip between the waiter's
                // predicate check and its sleep.
                std::lock_guard<std::mutex> lock(mutex_);
                batch_done_.notify_all();
            }
        }
    }

    void
    workerLoop(std::stop_token st)
    {
        while (true) {
            std::shared_ptr<Batch> batch;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                batch_ready_.wait(lock, st, [&] {
                    return batch_ && batch_->next.load() < batch_->n;
                });
                if (st.stop_requested()) return;
                batch = batch_;
            }
            if (batch) runBatch(*batch);
        }
    }

    std::mutex mutex_;
    std::condition_variable_any batch_ready_;
    std::condition_variable_any batch_done_;
    std::shared_ptr<Batch> batch_;
    // Last member: even if the explicit join in ~ThreadPool is ever
    // bypassed, the jthreads' own destructors run before the mutex and
    // condition variables above are torn down.
    std::vector<std::jthread> workers_;
};

} // namespace support
} // namespace tir

#endif // TENSORIR_SUPPORT_THREAD_POOL_H
