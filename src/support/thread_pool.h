/**
 * @file
 * A small fixed-size std::jthread pool used by the parallel tuning
 * pipeline (candidate instantiation, feature extraction, cost-model
 * fitting). Deliberately work-stealing-free: one shared batch with an
 * atomic claim index is all the §4.4 search needs, because every batch
 * is an embarrassingly parallel map over independent candidates.
 *
 * Determinism contract: parallelFor(n, fn) only parallelizes the *order
 * of execution*, never the work itself — fn(i) must be a pure function
 * of i and of state that is read-only for the duration of the call.
 * Callers that fold results do so sequentially, in index order, after
 * parallelFor returns; that is what makes `parallelism=1` and
 * `parallelism=N` produce byte-identical tuning results.
 *
 * parallelFor must be called from the thread that owns the pool (it
 * participates in the batch itself); calling it from inside a worker
 * task would deadlock and is not supported.
 *
 * Besides index batches, the pool runs detached background *tasks*
 * (submit/drain): fire-and-forget jobs the schedule-serving layer uses
 * for cache-miss tuning. Tasks and batches share the worker threads; a
 * worker prefers an open batch (the owner is blocked on it) and picks
 * up queued tasks otherwise, so a long-running task occupies one
 * worker without stalling parallelFor. A task must not call
 * parallelFor or submit on its own pool (deadlock / unbounded
 * recursion); spawning a private nested pool — as a background
 * autoTune with parallelism > 1 does — is fine.
 */
#ifndef TENSORIR_SUPPORT_THREAD_POOL_H
#define TENSORIR_SUPPORT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/failpoint.h"
#include "support/logging.h"

namespace tir {
namespace support {

/** Fixed pool of jthreads executing index-batch loops. */
class ThreadPool
{
  public:
    /**
     * Create a pool that runs batches on `threads` threads in total.
     * The calling thread counts as one of them, so `threads = 1` spawns
     * nothing and parallelFor degenerates to an inline loop; `threads =
     * 0` means "one per hardware thread".
     */
    explicit ThreadPool(int threads = 0)
    {
        if (threads <= 0) threads = hardwareParallelism();
        for (int t = 0; t < threads - 1; ++t) {
            workers_.emplace_back(
                [this](std::stop_token st) { workerLoop(st); });
        }
    }

    /** Destruction stops workers after their *current* work item:
     *  queued-but-unstarted tasks are discarded (observable via
     *  pendingTasks() beforehand). Callers that need every submitted
     *  task to finish call drain() first — that is the serving layer's
     *  clean-shutdown contract. */
    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (std::jthread& w : workers_) w.request_stop();
        }
        work_ready_.notify_all();
        // Join here, in the destructor body, so every worker has fully
        // returned from work_ready_.wait (which reacquires mutex_)
        // before the mutex and condition variables are destroyed.
        workers_.clear();
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total threads a batch runs on (including the calling thread). */
    int
    parallelism() const
    {
        return static_cast<int>(workers_.size()) + 1;
    }

    /** The OS-reported hardware thread count (at least 1). */
    static int
    hardwareParallelism()
    {
        unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : static_cast<int>(hw);
    }

    /**
     * Run fn(0) ... fn(n-1), distributed over the pool; returns when all
     * calls finished. The first exception thrown by any fn is rethrown
     * on the calling thread (after the batch drains).
     */
    void
    parallelFor(size_t n, const std::function<void(size_t)>& fn)
    {
        if (n == 0) return;
        if (workers_.empty() || n == 1) {
            for (size_t i = 0; i < n; ++i) fn(i);
            return;
        }
        auto batch = std::make_shared<Batch>();
        batch->fn = &fn;
        batch->n = n;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            TIR_ICHECK(!batch_) << "nested parallelFor is not supported";
            batch_ = batch;
        }
        work_ready_.notify_all();
        runBatch(*batch);
        {
            std::unique_lock<std::mutex> lock(mutex_);
            batch_done_.wait(lock, [&] {
                return batch->done.load() == batch->n;
            });
            batch_ = nullptr;
        }
        if (batch->error) std::rethrow_exception(batch->error);
    }

    /**
     * Enqueue a detached background task; it runs on some pool worker
     * when one is free. Requires a pool with at least one worker
     * (threads >= 2): with none, a "background" task could only run by
     * blocking the submitting thread, which would silently serialize
     * the caller — fail loudly instead. A task that throws is contained
     * (the exception is swallowed and counted in taskExceptions());
     * tasks that care about their errors report them through their own
     * channel, as the schedule server's tune jobs do.
     */
    void
    submit(std::function<void()> task)
    {
        TIR_ICHECK(!workers_.empty())
            << "ThreadPool::submit needs a pool with workers "
               "(threads >= 2)";
        {
            std::lock_guard<std::mutex> lock(mutex_);
            tasks_.push_back(std::move(task));
        }
        work_ready_.notify_one();
    }

    /** Block until every submitted task has finished (queue empty and
     *  nothing running). New submissions during the wait extend it. */
    void
    drain()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        tasks_done_.wait(lock, [&] {
            return tasks_.empty() && running_tasks_ == 0;
        });
    }

    /** Tasks not yet finished: queued plus currently running. Zero
     *  after drain() — the "no leaked pool tasks" shutdown assertion. */
    size_t
    pendingTasks() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return tasks_.size() + static_cast<size_t>(running_tasks_);
    }

    /** Background tasks that terminated by throwing (contained). */
    int
    taskExceptions() const
    {
        return task_exceptions_.load(std::memory_order_relaxed);
    }

  private:
    /** One parallelFor invocation: claim indices until exhausted. */
    struct Batch
    {
        const std::function<void(size_t)>* fn = nullptr;
        size_t n = 0;
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        std::exception_ptr error; // first error; guarded by owner mutex_
    };

    void
    runBatch(Batch& batch)
    {
        for (size_t i = batch.next.fetch_add(1); i < batch.n;
             i = batch.next.fetch_add(1)) {
            try {
                // Inside the try: an injected dispatch fault drains
                // into batch.error like any task exception, instead of
                // escaping a worker thread (which would terminate).
                failpoint::inject("thread_pool.dispatch");
                (*batch.fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!batch.error) batch.error = std::current_exception();
            }
            if (batch.done.fetch_add(1) + 1 == batch.n) {
                // Lock so the notify cannot slip between the waiter's
                // predicate check and its sleep.
                std::lock_guard<std::mutex> lock(mutex_);
                batch_done_.notify_all();
            }
        }
    }

    void
    workerLoop(std::stop_token st)
    {
        while (true) {
            std::shared_ptr<Batch> batch;
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                work_ready_.wait(lock, st, [&] {
                    return (batch_ && batch_->next.load() < batch_->n) ||
                           !tasks_.empty();
                });
                if (st.stop_requested()) return;
                if (batch_ && batch_->next.load() < batch_->n) {
                    // An open batch wins: the pool owner is blocked on
                    // it, while background tasks have no one waiting
                    // synchronously.
                    batch = batch_;
                } else {
                    task = std::move(tasks_.front());
                    tasks_.pop_front();
                    ++running_tasks_;
                }
            }
            if (batch) {
                runBatch(*batch);
            } else {
                try {
                    task();
                } catch (...) {
                    // A background task has no caller to rethrow into;
                    // containment (count, never terminate) mirrors the
                    // per-candidate policy everywhere else.
                    task_exceptions_.fetch_add(1,
                                               std::memory_order_relaxed);
                }
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    --running_tasks_;
                }
                tasks_done_.notify_all();
            }
        }
    }

    mutable std::mutex mutex_;
    std::condition_variable_any work_ready_;
    std::condition_variable_any batch_done_;
    std::condition_variable_any tasks_done_;
    std::shared_ptr<Batch> batch_;
    std::deque<std::function<void()>> tasks_;
    int running_tasks_ = 0;
    std::atomic<int> task_exceptions_{0};
    // Last member: even if the explicit join in ~ThreadPool is ever
    // bypassed, the jthreads' own destructors run before the mutex and
    // condition variables above are torn down.
    std::vector<std::jthread> workers_;
};

} // namespace support
} // namespace tir

#endif // TENSORIR_SUPPORT_THREAD_POOL_H
