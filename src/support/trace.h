/**
 * @file
 * Structured tracing and metrics for the tuning pipeline.
 *
 * One process-wide collector records three kinds of events while a
 * trace session is active:
 *
 *  - **Spans** — RAII scopes (`trace::Span`) that become Chrome-trace
 *    complete events (`"ph":"X"`) with per-thread track assignment, so
 *    the parallel pipeline's fan-out is visible in Perfetto /
 *    `chrome://tracing`.
 *  - **Counters** — `counterAdd` keeps a process-wide monotonic total
 *    per name (memo hits, filter rejects, trials measured) and emits a
 *    `"ph":"C"` sample on every increment; `gauge` emits free-form
 *    sampled values (cost-model loss, population latency).
 *  - **Instants** — point events (`"ph":"i"`) for things with no
 *    duration (an ε-greedy exploration pick, a measurement commit).
 *
 * Cost model: when no session is active every hook is one relaxed
 * atomic load and a branch — no clock reads, no allocation, no locks —
 * so instrumentation can stay in hot per-candidate paths. When active,
 * events append to thread-local buffers; the only locks are on
 * first-touch thread registration, counter-total updates, and final
 * export. Tracing is purely observational: it never touches an RNG or
 * reorders work, so tuning results are byte-identical with tracing on
 * or off (asserted in tests/test_trace.cpp).
 *
 * Sessions start either explicitly (`trace::start(path)`, or
 * `TuneOptions::trace_path` via `trace::SessionGuard`) or from the
 * `TENSORIR_TRACE=<path>` environment variable, which opens a session
 * at process start and flushes it at exit. `trace::stop()` writes the
 * JSON file (Chrome trace-event format, loadable in Perfetto) and
 * resets the collector. `trace::summaryText()` renders a
 * human-readable per-span aggregate of the active session — surfaced
 * as `TuneResult::trace_summary` at the end of a tuning run.
 */
#ifndef TENSORIR_SUPPORT_TRACE_H
#define TENSORIR_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace tir {
namespace trace {

namespace detail {
/** Session-active flag; the fast path every hook checks first. */
extern std::atomic<bool> g_enabled;
/** Nanoseconds on the session's steady clock. */
uint64_t nowNs();
/** Record a completed span [start_ns, end "now"] on this thread. */
void emitSpan(const char* name, uint64_t start_ns, std::string args);
} // namespace detail

/** Whether a trace session is active (one relaxed atomic load). */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Monotonic seconds on the trace clock (valid with or without a
 *  session), for code that keeps its own elapsed-time accounting. */
inline double
nowSeconds()
{
    return static_cast<double>(detail::nowNs()) * 1e-9;
}

/**
 * Begin a session that will be written to `path` (Chrome trace-event
 * JSON). Returns false (and changes nothing) when a session is already
 * active — the outermost owner wins, so nested tuners compose.
 */
bool start(const std::string& path);

/**
 * End the active session: write the JSON file, then reset the
 * collector. Safe to call with no session active (no-op). Must be
 * called when no other thread is concurrently recording events (the
 * pipeline's worker pools are torn down between searches, which is
 * where sessions end).
 */
void stop();

/**
 * Bump the process-wide monotonic counter `name` by `delta` (>= 0) and
 * emit a counter sample. Chrome category "counter"; scripts/
 * check_trace.py asserts every such series is non-decreasing.
 */
void counterAdd(const char* name, int64_t delta);

/** Emit a sampled gauge value (category "gauge", no monotonicity). */
void gauge(const char* name, double value);

/** Emit an instant (zero-duration) event, optionally with rendered
 *  JSON args (see `arg`). */
void instant(const char* name, std::string args = std::string());

/**
 * Human-readable aggregate of the active session: per-span call
 * counts and total/mean wall-clock, counter totals, and gauge finals.
 * Call from the session-owning thread while workers are idle. Returns
 * an empty string when no session is active.
 */
std::string summaryText();

/** Render one `"key":value` JSON fragment for span/instant args.
 *  Join multiple with `+ "," +`. */
std::string arg(const char* key, int64_t value);
std::string arg(const char* key, double value);
std::string arg(const char* key, const std::string& value);

/**
 * RAII scoped span. Does nothing when no session is active at
 * construction. `addArg` attaches args discovered mid-scope (e.g. a
 * candidate's reject reason).
 */
class Span
{
  public:
    explicit Span(const char* name)
    {
        if (enabled()) {
            name_ = name;
            start_ = detail::nowNs();
        }
    }
    Span(const char* name, std::string args) : Span(name)
    {
        if (name_) args_ = std::move(args);
    }
    ~Span()
    {
        if (name_) detail::emitSpan(name_, start_, std::move(args_));
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /** Append one more rendered arg (no-op when inactive). */
    void
    addArg(std::string rendered)
    {
        if (!name_) return;
        if (!args_.empty()) args_ += ',';
        args_ += std::move(rendered);
    }

  private:
    const char* name_ = nullptr; // nullptr: inactive
    uint64_t start_ = 0;
    std::string args_;
};

/**
 * Scoped span that *always* adds its duration to a caller-owned
 * seconds accumulator — the pipeline's stage timings
 * (`TuneResult::timings`) are fed through these, replacing ad-hoc
 * stopwatch code — and additionally emits a trace event when a
 * session is active.
 */
class AccumSpan
{
  public:
    AccumSpan(const char* name, double& seconds)
        : seconds_(seconds), span_(name)
    {
        start_ = detail::nowNs();
    }
    ~AccumSpan()
    {
        seconds_ +=
            static_cast<double>(detail::nowNs() - start_) * 1e-9;
    }
    AccumSpan(const AccumSpan&) = delete;
    AccumSpan& operator=(const AccumSpan&) = delete;

  private:
    double& seconds_;
    uint64_t start_ = 0;
    Span span_; // destroyed after the accumulation above
};

/**
 * Starts a session for `path` unless one is already active (or `path`
 * is empty); stops and writes it on destruction only if this guard
 * started it. This is how `TuneOptions::trace_path` scopes a session
 * to one `autoTune` (or one `runModelTuned`) call.
 */
class SessionGuard
{
  public:
    explicit SessionGuard(const std::string& path)
        : owns_(!path.empty() && start(path))
    {
    }
    ~SessionGuard()
    {
        if (owns_) stop();
    }
    SessionGuard(const SessionGuard&) = delete;
    SessionGuard& operator=(const SessionGuard&) = delete;

    /** Whether this guard opened (and will close) the session. */
    bool owns() const { return owns_; }

  private:
    bool owns_;
};

} // namespace trace
} // namespace tir

#endif // TENSORIR_SUPPORT_TRACE_H
