/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xedb88320) over a byte
 * string. One implementation shared by every line-oriented framing
 * protocol in the tree — the checkpoint journal (meta/journal.cpp) and
 * the measurement runner's worker pipe (meta/runner.cpp) — so a frame
 * checksummed by one side always verifies on the other.
 */
#ifndef TENSORIR_SUPPORT_CRC32_H
#define TENSORIR_SUPPORT_CRC32_H

#include <array>
#include <cstdint>
#include <string_view>

namespace tir {
namespace support {

inline uint32_t
crc32(std::string_view data)
{
    static const auto table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            }
            t[i] = c;
        }
        return t;
    }();
    uint32_t crc = 0xffffffffu;
    for (char ch : data) {
        crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xff] ^
              (crc >> 8);
    }
    return crc ^ 0xffffffffu;
}

} // namespace support
} // namespace tir

#endif // TENSORIR_SUPPORT_CRC32_H
