#include "support/env.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "support/logging.h"

namespace tir {
namespace support {

uint64_t
envUint(const char* name, uint64_t fallback, uint64_t min_value,
        uint64_t max_value)
{
    const char* env = std::getenv(name);
    if (!env || !*env) return fallback;
    const std::string text(env);
    TIR_CHECK(std::all_of(text.begin(), text.end(),
                          [](unsigned char c) {
                              return std::isdigit(c) != 0;
                          }))
        << name << "=\"" << env
        << "\" is not an unsigned decimal integer";
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    TIR_CHECK(errno != ERANGE && end && *end == '\0' &&
              v >= min_value && v <= max_value)
        << name << " out of range (" << min_value << ".." << max_value
        << "): \"" << env << "\"";
    return static_cast<uint64_t>(v);
}

bool
envFlag(const char* name, bool fallback)
{
    const char* env = std::getenv(name);
    if (!env || !*env) return fallback;
    const std::string text(env);
    if (text == "1" || text == "on") return true;
    if (text == "0" || text == "off") return false;
    TIR_FATAL << name << "=\"" << env
              << "\" is not a flag (expected 1, 0, on, or off)";
    return fallback; // unreachable; TIR_FATAL throws
}

} // namespace support
} // namespace tir
