/**
 * @file
 * Error handling and logging helpers.
 *
 * Follows the gem5 convention: fatal() for user errors (bad schedules,
 * invalid programs), panic() for internal invariant violations.
 */
#ifndef TENSORIR_SUPPORT_LOGGING_H
#define TENSORIR_SUPPORT_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace tir {

/** Exception thrown for user-caused errors (invalid schedule, bad input). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

/** Exception thrown for internal invariant violations. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string& msg) : std::logic_error(msg) {}
};

/** Stream-style message builder that throws on destruction. */
template <typename ErrorT>
class ErrorStream
{
  public:
    ErrorStream(const char* file, int line)
    {
        stream_ << file << ":" << line << ": ";
    }
    [[noreturn]] ~ErrorStream() noexcept(false)
    {
        throw ErrorT(stream_.str());
    }
    template <typename T>
    ErrorStream&
    operator<<(const T& value)
    {
        stream_ << value;
        return *this;
    }

  private:
    std::ostringstream stream_;
};

} // namespace tir

/** Report a user-caused error (invalid schedule, malformed program). */
#define TIR_FATAL ::tir::ErrorStream<::tir::FatalError>(__FILE__, __LINE__)
/** Report an internal bug. */
#define TIR_PANIC ::tir::ErrorStream<::tir::InternalError>(__FILE__, __LINE__)

/** Internal-consistency check; failure indicates a bug in this library. */
#define TIR_ICHECK(cond)                                                     \
    if (!(cond))                                                             \
    TIR_PANIC << "Check failed: " #cond " "

/** User-facing check; failure indicates invalid input or schedule. */
#define TIR_CHECK(cond)                                                      \
    if (!(cond))                                                             \
    TIR_FATAL << "Check failed: " #cond " "

#endif // TENSORIR_SUPPORT_LOGGING_H
