/**
 * @file
 * Deterministic random number generation used by sampling schedule
 * primitives and the evolutionary search. A small PCG-like generator keeps
 * results reproducible across platforms.
 */
#ifndef TENSORIR_SUPPORT_RNG_H
#define TENSORIR_SUPPORT_RNG_H

#include <cstdint>
#include <vector>

#include "support/logging.h"

namespace tir {

/** Deterministic splitmix64-based RNG. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    /** Avalanche-mix two words (splitmix64 finalizer over a ^ mix). */
    static uint64_t
    mixSeed(uint64_t a, uint64_t b)
    {
        uint64_t z = a + 0x9e3779b97f4a7c15ull + b;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /**
     * Derive an independent stream from (seed, stream, index) — e.g.
     * (tuning seed, generation, child index). Candidates drawn from
     * derived streams are statistically independent but fully
     * reproducible, which lets the parallel search evaluate them in any
     * order (or on any thread) without changing the result.
     */
    static Rng
    derive(uint64_t seed, uint64_t stream, uint64_t index)
    {
        return Rng(mixSeed(mixSeed(seed, stream), index));
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, n). */
    int64_t
    randInt(int64_t n)
    {
        TIR_ICHECK(n > 0) << "randInt needs positive bound, got " << n;
        return static_cast<int64_t>(next() % static_cast<uint64_t>(n));
    }

    /** Uniform integer in [lo, hi). */
    int64_t
    randRange(int64_t lo, int64_t hi)
    {
        TIR_ICHECK(hi > lo);
        return lo + randInt(hi - lo);
    }

    /** Uniform double in [0, 1). */
    double
    randDouble()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Sample an index according to non-negative weights. */
    size_t
    weightedChoice(const std::vector<double>& weights)
    {
        double total = 0;
        for (double w : weights) total += w;
        if (total <= 0) return randInt(static_cast<int64_t>(weights.size()));
        double r = randDouble() * total;
        for (size_t i = 0; i < weights.size(); ++i) {
            r -= weights[i];
            if (r <= 0) return i;
        }
        return weights.size() - 1;
    }

  private:
    uint64_t state_;
};

} // namespace tir

#endif // TENSORIR_SUPPORT_RNG_H
