/**
 * @file
 * Deterministic random number generation used by sampling schedule
 * primitives and the evolutionary search. A small PCG-like generator keeps
 * results reproducible across platforms.
 */
#ifndef TENSORIR_SUPPORT_RNG_H
#define TENSORIR_SUPPORT_RNG_H

#include <cmath>
#include <cstdint>
#include <vector>

#include "support/logging.h"

namespace tir {

/** Deterministic splitmix64-based RNG. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    /** Avalanche-mix two words (splitmix64 finalizer over a ^ mix). */
    static uint64_t
    mixSeed(uint64_t a, uint64_t b)
    {
        uint64_t z = a + 0x9e3779b97f4a7c15ull + b;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /**
     * Derive an independent stream from (seed, stream, index) — e.g.
     * (tuning seed, generation, child index). Candidates drawn from
     * derived streams are statistically independent but fully
     * reproducible, which lets the parallel search evaluate them in any
     * order (or on any thread) without changing the result.
     */
    static Rng
    derive(uint64_t seed, uint64_t stream, uint64_t index)
    {
        return Rng(mixSeed(mixSeed(seed, stream), index));
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /**
     * Uniform integer in [0, n). Rejection sampling: a plain
     * `next() % n` over-weights the first `2^64 mod n` outcomes, a
     * bias that becomes measurable once n approaches the word size
     * (pinned in tests/test_search_parallel.cpp). Draws above the
     * largest multiple of n are re-rolled, so every outcome is exactly
     * equally likely; the expected number of re-rolls is below one for
     * every n.
     */
    int64_t
    randInt(int64_t n)
    {
        TIR_ICHECK(n > 0) << "randInt needs positive bound, got " << n;
        uint64_t bound = static_cast<uint64_t>(n);
        // 2^64 mod bound, computed in 64-bit arithmetic: values below
        // this threshold are the remainder that would be over-weighted.
        uint64_t threshold = (0 - bound) % bound;
        uint64_t draw = next();
        while (draw < threshold) draw = next();
        return static_cast<int64_t>(draw % bound);
    }

    /** Uniform integer in [lo, hi). */
    int64_t
    randRange(int64_t lo, int64_t hi)
    {
        TIR_ICHECK(hi > lo);
        return lo + randInt(hi - lo);
    }

    /** Uniform double in [0, 1). */
    double
    randDouble()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /**
     * Sample an index according to non-negative finite weights.
     * Zero-weight entries are never returned (when any weight is
     * positive); all-zero weights fall back to a uniform pick, which
     * keeps degenerate fitness vectors usable. Negative or non-finite
     * weights are a caller bug and fail an internal check instead of
     * silently skewing the distribution.
     */
    size_t
    weightedChoice(const std::vector<double>& weights)
    {
        TIR_ICHECK(!weights.empty())
            << "weightedChoice needs at least one weight";
        double total = 0;
        for (double w : weights) {
            TIR_ICHECK(std::isfinite(w) && w >= 0)
                << "weightedChoice needs non-negative finite weights, "
                << "got " << w;
            total += w;
        }
        if (total <= 0) {
            return static_cast<size_t>(
                randInt(static_cast<int64_t>(weights.size())));
        }
        return weightedIndex(weights, randDouble());
    }

    /**
     * The deterministic core of weightedChoice: map `r01` in [0, 1) to
     * an index of a positive-total weight vector. Exposed so the
     * boundary behaviour is directly testable: `r01 == 0` with weights
     * {0, 1} must select index 1, never the zero-weight entry (the
     * pre-fix scan returned index 0 there because `r - 0 <= 0` matched
     * immediately).
     */
    static size_t
    weightedIndex(const std::vector<double>& weights, double r01)
    {
        double total = 0;
        for (double w : weights) total += w;
        double r = r01 * total;
        size_t last_positive = weights.size();
        for (size_t i = 0; i < weights.size(); ++i) {
            if (weights[i] <= 0) continue; // never select zero weight
            last_positive = i;
            r -= weights[i];
            if (r <= 0) return i;
        }
        // Floating-point accumulation can leave a sliver of r; land on
        // the last entry that is actually selectable.
        TIR_ICHECK(last_positive < weights.size());
        return last_positive;
    }

  private:
    uint64_t state_;
};

} // namespace tir

#endif // TENSORIR_SUPPORT_RNG_H
