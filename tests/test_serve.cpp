/**
 * @file
 * The schedule-serving layer: sharded database thread-safety, the
 * mutex-free hot cache, single-flight miss coalescing, checkpoint
 * streaming, and the clean-shutdown contract. The concurrency suites
 * here (ServeDatabase*, HotCache*, ScheduleServer*) also run under the
 * TSan CI configuration.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "ir/structural_hash.h"
#include "meta/database.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "workloads/workloads.h"

#include "test_util.h"

namespace tir {
namespace {

meta::TuneRecord
makeRecord(uint64_t hash, double latency,
           const std::string& name = "wl")
{
    meta::TuneRecord record;
    record.workload_hash = hash;
    record.workload_name = name;
    record.latency_us = latency;
    record.sketch = "tensor";
    return record;
}

/** A tiny tuning budget so background tunes finish in milliseconds. */
meta::TuneOptions
smallTune()
{
    meta::TuneOptions options;
    options.population = 3;
    options.generations = 1;
    options.children_per_generation = 4;
    options.measured_per_generation = 2;
    options.parallelism = 1; // background jobs must not nest pools wide
    return options;
}

TEST(ServeDatabaseTest, CommitLookupBasics)
{
    meta::ShardedTuningDatabase db(4);
    EXPECT_EQ(db.shardCount(), 4);
    EXPECT_FALSE(db.lookup(7).has_value());
    db.commit(makeRecord(7, 10.0));
    ASSERT_TRUE(db.lookup(7).has_value());
    EXPECT_DOUBLE_EQ(db.lookup(7)->latency_us, 10.0);
    // Improve-only, like the plain database.
    db.commit(makeRecord(7, 20.0));
    EXPECT_DOUBLE_EQ(db.lookup(7)->latency_us, 10.0);
    db.commit(makeRecord(7, 5.0));
    EXPECT_DOUBLE_EQ(db.lookup(7)->latency_us, 5.0);
    EXPECT_EQ(db.size(), 1u);
}

TEST(ServeDatabaseTest, SnapshotAndAbsorbExchangeRecords)
{
    meta::ShardedTuningDatabase db(8);
    for (uint64_t h = 1; h <= 20; ++h) {
        db.commit(makeRecord(h, static_cast<double>(h)));
    }
    meta::TuningDatabase snap = db.snapshot();
    EXPECT_EQ(snap.size(), 20u);

    meta::ShardedTuningDatabase other(3);
    other.absorb(snap);
    EXPECT_EQ(other.size(), 20u);
    EXPECT_DOUBLE_EQ(other.lookup(13)->latency_us, 13.0);
}

TEST(ServeDatabaseTest, ConcurrentCommitsKeepTheBest)
{
    // N threads commit different latencies for the same workloads; the
    // improve-only invariant must hold under any interleaving.
    meta::ShardedTuningDatabase db(4);
    constexpr int kThreads = 8;
    constexpr uint64_t kWorkloads = 16;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&db, t] {
            for (uint64_t h = 0; h < kWorkloads; ++h) {
                // Thread t commits latency (t xor h)+1; the global
                // minimum per workload is deterministic.
                db.commit(makeRecord(
                    h, static_cast<double>((t ^ static_cast<int>(h)) %
                                           kThreads) +
                           1.0));
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(db.size(), kWorkloads);
    for (uint64_t h = 0; h < kWorkloads; ++h) {
        double expect_min = 1e300;
        for (int t = 0; t < kThreads; ++t) {
            expect_min = std::min(
                expect_min,
                static_cast<double>((t ^ static_cast<int>(h)) %
                                    kThreads) +
                    1.0);
        }
        ASSERT_TRUE(db.lookup(h).has_value());
        EXPECT_DOUBLE_EQ(db.lookup(h)->latency_us, expect_min);
    }
}

TEST(ServeDatabaseTest, ConcurrentCommitLookupSnapshotSave)
{
    // The serving mix: writers commit, readers look up, and a
    // snapshotter saves — all racing. Every lookup that returns must
    // return an intact committed record, and every saved snapshot must
    // parse back cleanly (atomic publish: no torn file).
    meta::ShardedTuningDatabase db(4);
    const std::string path =
        ::testing::TempDir() + "/tensorir_serve_snap_test.db";
    std::atomic<bool> stop{false};
    std::atomic<int> bad_reads{0};

    std::vector<std::thread> writers;
    for (int t = 0; t < 3; ++t) {
        writers.emplace_back([&db, &stop, t] {
            uint64_t h = 0;
            while (!stop.load()) {
                db.commit(makeRecord(h % 32,
                                     static_cast<double>(t + 1) * 10.0,
                                     "workload with spaces"));
                ++h;
            }
        });
    }
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&db, &stop, &bad_reads] {
            while (!stop.load()) {
                for (uint64_t h = 0; h < 32; ++h) {
                    auto got = db.lookup(h);
                    if (got &&
                        (got->workload_hash != h ||
                         got->latency_us <= 0)) {
                        bad_reads.fetch_add(1);
                    }
                }
            }
        });
    }
    std::thread snapshotter([&db, &stop, &path] {
        while (!stop.load()) {
            db.saveSnapshot(path);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
    for (auto& th : writers) th.join();
    for (auto& th : readers) th.join();
    snapshotter.join();

    EXPECT_EQ(bad_reads.load(), 0);
    meta::LoadReport report;
    meta::TuningDatabase loaded =
        meta::TuningDatabase::load(path, &report);
    EXPECT_EQ(report.dropped, 0) << "snapshot must never be torn";
    EXPECT_GT(loaded.size(), 0u);
    std::remove(path.c_str());
}

TEST(HotCacheTest, GetPutAndSameKeyReplacement)
{
    serve::HotCache cache(64);
    EXPECT_EQ(cache.get(42), nullptr);
    cache.put(std::make_shared<const meta::TuneRecord>(
        makeRecord(42, 9.0)));
    auto hit = cache.get(42);
    ASSERT_NE(hit, nullptr);
    EXPECT_DOUBLE_EQ(hit->latency_us, 9.0);
    // Same key replaces in place (no second slot, no eviction).
    cache.put(std::make_shared<const meta::TuneRecord>(
        makeRecord(42, 4.0)));
    EXPECT_DOUBLE_EQ(cache.get(42)->latency_us, 4.0);
    EXPECT_EQ(cache.evictions(), 0u);
}

TEST(HotCacheTest, EvictsLeastRecentlyTouchedWhenFull)
{
    // Force every key into one probe set by using a tiny cache whose
    // size equals the associativity.
    serve::HotCache cache(1);
    ASSERT_EQ(cache.capacity(), 4u);
    // Keys that all map to slot 0 of a 4-slot cache.
    const uint64_t keys[] = {0, 4, 8, 12};
    for (uint64_t k : keys) {
        cache.put(std::make_shared<const meta::TuneRecord>(
            makeRecord(k, 1.0)));
    }
    // Touch everything except key 4, making it the LRU victim.
    EXPECT_NE(cache.get(0), nullptr);
    EXPECT_NE(cache.get(8), nullptr);
    EXPECT_NE(cache.get(12), nullptr);
    cache.put(std::make_shared<const meta::TuneRecord>(
        makeRecord(16, 1.0)));
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.get(4), nullptr) << "LRU entry must be the victim";
    EXPECT_NE(cache.get(0), nullptr);
    EXPECT_NE(cache.get(16), nullptr);
}

TEST(HotCacheTest, ConcurrentGetsAgainstPuts)
{
    // The fast path's whole point: readers hammer get() lock-free
    // while a writer churns the same probe sets. Every hit must be a
    // self-consistent record (payload matches its own key).
    serve::HotCache cache(32);
    std::atomic<bool> stop{false};
    std::atomic<int> inconsistent{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&] {
            while (!stop.load()) {
                for (uint64_t k = 0; k < 64; ++k) {
                    auto hit = cache.get(k);
                    if (hit && hit->workload_hash != k) {
                        inconsistent.fetch_add(1);
                    }
                }
            }
        });
    }
    std::thread writer([&] {
        uint64_t k = 0;
        while (!stop.load()) {
            cache.put(std::make_shared<const meta::TuneRecord>(
                makeRecord(k % 64, static_cast<double>(k + 1))));
            ++k;
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
    for (auto& th : readers) th.join();
    writer.join();
    EXPECT_EQ(inconsistent.load(), 0);
}

TEST(ScheduleServerTest, ServesSeededRecordAsFinalHit)
{
    serve::ServeOptions options;
    options.tune_workers = 1;
    options.tune = smallTune();
    serve::ScheduleServer server(options);

    workloads::OpSpec op = workloads::gmm(64, 64, 64);
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    const uint64_t hash = structuralHash(task.func);
    server.target("gpu").commit(makeRecord(hash, 3.0, "seeded"));

    auto first = server.query(task);
    ASSERT_NE(first.record, nullptr);
    EXPECT_TRUE(first.final);
    EXPECT_EQ(first.pending, nullptr);
    EXPECT_DOUBLE_EQ(first.record->latency_us, 3.0);

    // The commit pre-warmed the cache, so the repeat is a hot hit.
    auto second = server.query(task);
    EXPECT_TRUE(second.from_hot_cache);

    server.shutdown();
    serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.queries, 2u);
    EXPECT_EQ(stats.hot_hits + stats.shard_hits, 2u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.tunes_started, 0u);
}

TEST(ScheduleServerTest, MissTunesInBackgroundAndStreams)
{
    serve::ServeOptions options;
    options.tune_workers = 1;
    options.tune = smallTune();
    serve::ScheduleServer server(options);

    workloads::OpSpec op = workloads::gmm(64, 64, 64);
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};

    auto miss = server.query(task);
    EXPECT_EQ(miss.record, nullptr);
    EXPECT_FALSE(miss.final);
    ASSERT_NE(miss.pending, nullptr);

    // Streaming: a first (possibly non-final) schedule arrives before
    // the job necessarily finishes, then the final one on completion.
    auto streamed = miss.pending->waitFirst(std::chrono::minutes(2));
    ASSERT_TRUE(streamed.has_value());
    EXPECT_TRUE(std::isfinite(streamed->latency_us));

    auto final_record =
        miss.pending->waitFinal(std::chrono::minutes(2));
    ASSERT_TRUE(final_record.has_value());
    EXPECT_TRUE(miss.pending->done());
    EXPECT_FALSE(miss.pending->failed());
    EXPECT_GE(miss.pending->updates(), 2)
        << "initial population + final result at minimum";

    // The tuned record is now served as a hit.
    auto hit = server.query(task);
    ASSERT_NE(hit.record, nullptr);
    EXPECT_TRUE(hit.final);
    EXPECT_DOUBLE_EQ(hit.record->latency_us, final_record->latency_us);

    server.shutdown();
    serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.tunes_started, 1u);
    EXPECT_EQ(stats.tunes_completed, 1u);
    EXPECT_EQ(stats.tunes_failed, 0u);
    EXPECT_GE(stats.records_streamed, 2u);
    EXPECT_EQ(server.pendingPoolTasks(), 0u);
}

TEST(ScheduleServerTest, ConcurrentMissesCoalesceToOneTune)
{
    // Satellite 4's single-flight contract: K clients miss on the same
    // workload at once; exactly one background tune runs and everyone
    // gets the same result.
    serve::ServeOptions options;
    options.tune_workers = 2;
    options.tune = smallTune();
    serve::ScheduleServer server(options);

    workloads::OpSpec op = workloads::gmm(64, 64, 64);
    constexpr int kClients = 8;
    std::vector<std::thread> clients;
    std::vector<std::optional<meta::TuneRecord>> results(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            meta::TuneTask task{op.func, "C", "gpu",
                                {"wmma_16x16x16_f16"}};
            results[c] =
                server.getBest(task, std::chrono::minutes(2));
        });
    }
    for (auto& th : clients) th.join();

    for (int c = 0; c < kClients; ++c) {
        ASSERT_TRUE(results[c].has_value()) << "client " << c;
        EXPECT_TRUE(std::isfinite(results[c]->latency_us));
    }

    server.shutdown();
    serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.tunes_started, 1u)
        << "K concurrent misses must coalesce into one tune";
    EXPECT_EQ(stats.tunes_completed, 1u);
    EXPECT_EQ(stats.misses, static_cast<uint64_t>(kClients));
    EXPECT_EQ(stats.coalesced, static_cast<uint64_t>(kClients - 1));
    EXPECT_EQ(server.pendingTunes(), 0u);
    EXPECT_EQ(server.pendingPoolTasks(), 0u);
}

TEST(ScheduleServerTest, DistinctWorkloadsTuneIndependently)
{
    serve::ServeOptions options;
    options.tune_workers = 2;
    options.tune = smallTune();
    serve::ScheduleServer server(options);

    workloads::OpSpec a = workloads::gmm(64, 64, 64);
    workloads::OpSpec b = workloads::gmm(128, 64, 64);
    meta::TuneTask task_a{a.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneTask task_b{b.func, "C", "gpu", {"wmma_16x16x16_f16"}};

    auto got_a = server.getBest(task_a, std::chrono::minutes(2));
    auto got_b = server.getBest(task_b, std::chrono::minutes(2));
    ASSERT_TRUE(got_a.has_value());
    ASSERT_TRUE(got_b.has_value());
    EXPECT_NE(got_a->workload_hash, got_b->workload_hash);

    server.shutdown();
    EXPECT_EQ(server.stats().tunes_started, 2u);
}

TEST(ScheduleServerTest, ShutdownSnapshotsAndWarmStartRestores)
{
    const std::string prefix =
        ::testing::TempDir() + "/tensorir_serve_warm_test";
    const std::string path = prefix + ".gpu.db";
    std::remove(path.c_str());

    workloads::OpSpec op = workloads::gmm(64, 64, 64);
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    const uint64_t hash = structuralHash(task.func);

    {
        serve::ServeOptions options;
        options.tune_workers = 1;
        options.tune = smallTune();
        options.snapshot_prefix = prefix;
        serve::ScheduleServer server(options);
        server.target("gpu").commit(
            makeRecord(hash, 2.25, "warm schedule"));
        server.shutdown();
    }
    {
        serve::ServeOptions options;
        options.tune_workers = 1;
        options.tune = smallTune();
        options.snapshot_prefix = prefix;
        serve::ScheduleServer server(options);
        auto hit = server.query(task);
        ASSERT_NE(hit.record, nullptr) << "warm start must restore";
        EXPECT_TRUE(hit.final);
        EXPECT_DOUBLE_EQ(hit.record->latency_us, 2.25);
        EXPECT_EQ(hit.record->workload_name, "warm schedule");
        EXPECT_EQ(server.stats().tunes_started, 0u);
        server.shutdown();
    }
    std::remove(path.c_str());
}

TEST(ScheduleServerTest, QueryAfterShutdownFailsLoudly)
{
    serve::ServeOptions options;
    options.tune_workers = 1;
    options.tune = smallTune();
    serve::ScheduleServer server(options);
    server.shutdown();
    server.shutdown(); // idempotent
    workloads::OpSpec op = workloads::gmm(64, 64, 64);
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    EXPECT_THROW(server.query(task), FatalError);
}

} // namespace
} // namespace tir
