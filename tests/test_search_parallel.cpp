/**
 * @file
 * The parallel tuning pipeline's determinism contract: for a fixed
 * seed, tuning results are byte-identical for any `parallelism`
 * setting, because candidate RNGs derive from (seed, generation,
 * child_index) and all folds run sequentially in candidate order. Also
 * covers the structural-hash memo cache and the thread-pool / RNG
 * building blocks.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <thread>

#include "intrin/tensor_intrin.h"
#include "ir/printer.h"
#include "meta/journal.h"
#include "meta/search.h"
#include "meta/sketch.h"
#include "support/failpoint.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

namespace tir {
namespace {

void
expectSameDecisions(const std::vector<Decision>& a,
                    const std::vector<Decision>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind) << "decision " << i;
        EXPECT_EQ(a[i].extent, b[i].extent) << "decision " << i;
        EXPECT_EQ(a[i].number, b[i].number) << "decision " << i;
        EXPECT_EQ(a[i].max_innermost, b[i].max_innermost)
            << "decision " << i;
        EXPECT_EQ(a[i].values, b[i].values) << "decision " << i;
        EXPECT_EQ(a[i].num_candidates, b[i].num_candidates)
            << "decision " << i;
    }
}

meta::TuneOptions
searchOptions(int parallelism)
{
    meta::TuneOptions options;
    options.population = 8;
    options.generations = 4;
    options.children_per_generation = 16;
    options.measured_per_generation = 6;
    options.seed = 91;
    options.parallelism = parallelism;
    return options;
}

TEST(ParallelSearchTest, ByteIdenticalAcrossParallelism)
{
    workloads::OpSpec op = workloads::gmm(256, 256, 256);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};

    meta::TuneResult serial = meta::autoTune(
        task, gpu, searchOptions(1), meta::TunerStyle::kTensorIR);
    meta::TuneResult parallel = meta::autoTune(
        task, gpu, searchOptions(4), meta::TunerStyle::kTensorIR);

    EXPECT_EQ(serial.parallelism_used, 1);
    EXPECT_EQ(parallel.parallelism_used, 4);

    // The contract: identical winners, trajectories, and accounting.
    expectSameDecisions(serial.best_decisions, parallel.best_decisions);
    EXPECT_EQ(serial.best_latency_us, parallel.best_latency_us);
    EXPECT_EQ(serial.best_sketch, parallel.best_sketch);
    EXPECT_EQ(serial.history, parallel.history);
    EXPECT_EQ(serial.trials_measured, parallel.trials_measured);
    EXPECT_EQ(serial.invalid_filtered, parallel.invalid_filtered);
    EXPECT_EQ(serial.tuning_cost_us, parallel.tuning_cost_us);
    EXPECT_EQ(serial.memo_hits, parallel.memo_hits);
    EXPECT_EQ(serial.memo_measure_hits, parallel.memo_measure_hits);
    // Even the winning program is the same, byte for byte.
    EXPECT_EQ(funcToString(serial.best_func),
              funcToString(parallel.best_func));
}

TEST(ParallelSearchTest, MemoCacheHitsDuplicateCandidates)
{
    // Mutation frequently re-derives an already-seen schedule (a tile
    // factor moved back, two parents producing the same child); each
    // such duplicate must hit the structural-hash memo rather than pay
    // feature extraction again.
    workloads::OpSpec op = workloads::gmm(128, 128, 128);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneOptions options = searchOptions(2);
    options.generations = 6;
    meta::TuneResult result =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR);

    EXPECT_GT(result.memo_hits, 0)
        << "expected duplicate candidates across generations";
    // Duplicates that reach the measurement stage are served from the
    // memo (no re-run) but still charged the simulated profiling cost,
    // so Table 1 accounting stays comparable across personas.
    EXPECT_GT(result.memo_measure_hits, 0);
    // Sanity-check that accounting: every measured trial — memo hit or
    // not — was charged at least the per-measurement overhead.
    EXPECT_GE(result.tuning_cost_us,
              result.trials_measured * options.measure_overhead_us);
}

TEST(ParallelSearchTest, StageTimingsAreRecorded)
{
    workloads::OpSpec op = workloads::gmm(128, 128, 128);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneOptions options = searchOptions(2);
    options.generations = 2;
    meta::TuneResult result =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR);
    EXPECT_GT(result.timings.generate_s, 0.0);
    EXPECT_GT(result.timings.evaluate_s, 0.0);
    EXPECT_GT(result.timings.total_s, 0.0);
    EXPECT_GE(result.timings.total_s,
              result.timings.generate_s + result.timings.evaluate_s);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce)
{
    support::ThreadPool pool(4);
    EXPECT_EQ(pool.parallelism(), 4);
    std::vector<std::atomic<int>> counts(1000);
    pool.parallelFor(counts.size(),
                     [&](size_t i) { counts[i].fetch_add(1); });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
    // Reusable for further batches.
    std::atomic<long> sum{0};
    pool.parallelFor(100, [&](size_t i) {
        sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, PropagatesWorkerExceptions)
{
    support::ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](size_t i) {
                                      if (i == 13) {
                                          throw std::runtime_error("boom");
                                      }
                                  }),
                 std::runtime_error);
    // The pool survives a failed batch.
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, ThrowingWorkerDrainsBatchAndFirstErrorWins)
{
    // One candidate throwing must not strand the rest of the batch:
    // every index still runs (workers keep claiming after a failure),
    // exactly one exception reaches the caller, and the pool stays
    // usable. This is the search's behaviour when sketch instantiation
    // fails for some candidates of a generation.
    support::ThreadPool pool(4);
    std::vector<std::atomic<int>> ran(64);
    int caught = 0;
    try {
        pool.parallelFor(ran.size(), [&](size_t i) {
            ran[i].fetch_add(1);
            throw std::runtime_error("candidate " + std::to_string(i));
        });
    } catch (const std::runtime_error& e) {
        ++caught;
        EXPECT_NE(std::string(e.what()).find("candidate"),
                  std::string::npos);
    }
    EXPECT_EQ(caught, 1) << "exactly the first error must propagate";
    for (const auto& r : ran) {
        EXPECT_EQ(r.load(), 1) << "batch must drain despite the errors";
    }
    // Reusable after a fully-failing batch.
    std::atomic<int> ok{0};
    pool.parallelFor(16, [&](size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 16);
}

TEST(ThreadPoolTest, DestructionRightAfterBatchIsClean)
{
    // Regression: ~ThreadPool must join workers before tearing down the
    // mutex/condition variables they wait on. Destroying the pool
    // immediately after a batch — while workers may still be inside
    // batch_ready_.wait — is exactly the end-of-search pattern.
    for (int iter = 0; iter < 50; ++iter) {
        support::ThreadPool pool(4);
        std::atomic<int> ran{0};
        pool.parallelFor(16, [&](size_t) { ran.fetch_add(1); });
        EXPECT_EQ(ran.load(), 16);
    }
}

TEST(ThreadPoolTest, SingleThreadRunsInline)
{
    support::ThreadPool pool(1);
    EXPECT_EQ(pool.parallelism(), 1);
    std::vector<int> order;
    pool.parallelFor(5, [&](size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, BackgroundTasksRunAndDrain)
{
    support::ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&] { ran.fetch_add(1); });
    }
    pool.drain();
    EXPECT_EQ(ran.load(), 100);
    EXPECT_EQ(pool.pendingTasks(), 0u);
    EXPECT_EQ(pool.taskExceptions(), 0);
}

TEST(ThreadPoolTest, TasksAndBatchesShareWorkers)
{
    // A long-running background task occupies one worker; parallelFor
    // must still complete on the rest (the serving layer tunes in the
    // background while searches run batches on the same pool).
    support::ThreadPool pool(4);
    std::atomic<bool> release{false};
    std::atomic<int> task_ran{0};
    pool.submit([&] {
        while (!release.load()) std::this_thread::yield();
        task_ran.fetch_add(1);
    });
    std::atomic<int> batch_ran{0};
    pool.parallelFor(64, [&](size_t) { batch_ran.fetch_add(1); });
    EXPECT_EQ(batch_ran.load(), 64);
    release.store(true);
    pool.drain();
    EXPECT_EQ(task_ran.load(), 1);
    EXPECT_EQ(pool.pendingTasks(), 0u);
}

TEST(ThreadPoolTest, ThrowingTaskIsContainedAndCounted)
{
    support::ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("contained"); });
    pool.submit([&] { ran.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(ran.load(), 1) << "a throwing task must not kill workers";
    EXPECT_EQ(pool.taskExceptions(), 1);
    EXPECT_EQ(pool.pendingTasks(), 0u);
}

TEST(ThreadPoolTest, SubmitOnWorkerlessPoolFails)
{
    // threads = 1 means no workers: a "background" task could only run
    // by blocking the submitter, so submit fails loudly instead.
    support::ThreadPool pool(1);
    EXPECT_THROW(pool.submit([] {}), InternalError);
}

TEST(ParallelSearchTest, ThrowingCandidatesKeepDeterminism)
{
    // A sketch that throws FatalError for a deterministic subset of
    // candidates (a stand-in for instantiation failures) must leave
    // the parallelism contract intact: throwing candidates are counted
    // as structural rejects and the surviving trajectory is identical
    // for any thread count.
    workloads::OpSpec op = workloads::gmm(128, 128, 128);
    hwsim::GpuDevice gpu;
    meta::SketchApplier base =
        meta::makeLoopSketchApplier("C", /*gpu=*/true);
    meta::SketchApplier flaky = [base](Schedule& sch) {
        base(sch);
        // Pure function of the candidate's decisions, so the same
        // candidates fail no matter which worker instantiates them.
        int64_t sum = 0;
        for (const Decision& d : sch.decisions()) {
            for (int64_t v : d.values) sum += v;
        }
        if (sum % 3 == 0) TIR_FATAL << "deterministic flaky candidate";
    };

    auto run = [&](int parallelism) {
        meta::TuneOptions options = searchOptions(parallelism);
        return meta::evolutionarySearch(op.func, flaky, gpu, options);
    };
    meta::TuneResult serial = run(1);
    meta::TuneResult parallel = run(4);

    EXPECT_GT(serial.invalid_filtered, 0)
        << "the flaky sketch never fired; the test lost its point";
    expectSameDecisions(serial.best_decisions, parallel.best_decisions);
    EXPECT_EQ(serial.best_latency_us, parallel.best_latency_us);
    EXPECT_EQ(serial.history, parallel.history);
    EXPECT_EQ(serial.trials_measured, parallel.trials_measured);
    EXPECT_EQ(serial.invalid_filtered, parallel.invalid_filtered);
    EXPECT_EQ(serial.tuning_cost_us, parallel.tuning_cost_us);
}

TEST(ParallelSearchTest, InjectedFailuresAreAccountedExactly)
{
    // Every injected instantiation fault must show up in the result's
    // accounting: the site fires once per doomed candidate (it is keyed
    // by the candidate's schedule seed), and each fired candidate is
    // contained as exactly one runtime reject — never process death.
    workloads::OpSpec op = workloads::gmm(128, 128, 128);
    hwsim::GpuDevice gpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier("C", /*gpu=*/true);

    failpoint::ScopedFailpoints chaos(
        "seed=21; search.instantiate=throw(0.25)");
    meta::TuneResult result =
        meta::evolutionarySearch(op.func, sketch, gpu, searchOptions(2));
    failpoint::SiteStats st = failpoint::stats("search.instantiate");

    EXPECT_GT(st.fired, 0u) << "p=0.25 chaos schedule never fired";
    EXPECT_GT(st.evaluated, st.fired);
    EXPECT_EQ(result.runtime_filtered, static_cast<int>(st.fired));
    // The search itself still converged on a winner.
    EXPECT_TRUE(std::isfinite(result.best_latency_us));
    EXPECT_EQ(result.history.size(),
              static_cast<size_t>(searchOptions(2).generations) + 1);
}

TEST(ParallelSearchTest, ChaosScheduleKeepsParallelismInvariance)
{
    // With ~20% of candidates failing (instantiation throws plus
    // evaluation errors), the determinism contract must survive: both
    // sites are keyed by candidate identity, not call order, so the
    // same candidates fail on any thread count and the full TuneResult
    // stays byte-identical.
    workloads::OpSpec op = workloads::gmm(128, 128, 128);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};

    auto run = [&](int parallelism) {
        failpoint::ScopedFailpoints chaos(
            "seed=33; search.instantiate=throw(0.1);"
            " search.evaluate=error(0.1)");
        return meta::autoTune(task, gpu, searchOptions(parallelism),
                              meta::TunerStyle::kTensorIR);
    };
    meta::TuneResult serial = run(1);
    meta::TuneResult parallel = run(4);

    EXPECT_GT(serial.runtime_filtered, 0)
        << "the chaos schedule never fired; the test lost its point";
    expectSameDecisions(serial.best_decisions, parallel.best_decisions);
    EXPECT_EQ(serial.best_latency_us, parallel.best_latency_us);
    EXPECT_EQ(serial.best_sketch, parallel.best_sketch);
    EXPECT_EQ(serial.history, parallel.history);
    EXPECT_EQ(serial.trials_measured, parallel.trials_measured);
    EXPECT_EQ(serial.invalid_filtered, parallel.invalid_filtered);
    EXPECT_EQ(serial.runtime_filtered, parallel.runtime_filtered);
    EXPECT_EQ(serial.tuning_cost_us, parallel.tuning_cost_us);
    EXPECT_EQ(serial.memo_hits, parallel.memo_hits);
    EXPECT_EQ(serial.memo_measure_hits, parallel.memo_measure_hits);
    EXPECT_EQ(funcToString(serial.best_func),
              funcToString(parallel.best_func));
}

TEST(ParallelSearchTest, JournalResumeIsByteIdenticalAfterCrash)
{
    // The crash-safety contract end to end: kill the search at the
    // worst moment (a generation finished but its checkpoint not yet
    // persisted), resume from the journal, and the final result must be
    // byte-identical to a run that was never interrupted.
    workloads::OpSpec op = workloads::gmm(128, 128, 128);
    hwsim::GpuDevice gpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier("C", /*gpu=*/true);
    const std::string journal =
        ::testing::TempDir() + "tensorir_resume_journal.txt";
    meta::resetJournal(journal);

    meta::TuneOptions options = searchOptions(2);
    options.journal_path = journal;
    options.journal_label = "resume_test";

    // All three runs under a pinned failpoint context, so an ambient
    // chaos schedule (the CI chaos job sets one process-wide) cannot
    // make the interrupted trajectory diverge from the reference.
    failpoint::ScopedFailpoints quiet("");

    // Reference: the same search, never interrupted (and never
    // journaled — journaling is observational).
    meta::TuneOptions plain = searchOptions(2);
    meta::TuneResult reference =
        meta::evolutionarySearch(op.func, sketch, gpu, plain);

    // Crash at the third checkpoint write: the init checkpoint and
    // generation 0's survive, generation 1's work is lost mid-write.
    {
        failpoint::ScopedFailpoints kill("search.checkpoint=throw@2");
        EXPECT_THROW(
            meta::evolutionarySearch(op.func, sketch, gpu, options),
            failpoint::InjectedFault);
    }

    meta::TuneOptions resume_options = options;
    resume_options.resume = true;
    meta::TuneResult resumed =
        meta::evolutionarySearch(op.func, sketch, gpu, resume_options);

    EXPECT_EQ(resumed.generations_replayed, 2)
        << "expected the init checkpoint plus generation 0 restored";
    expectSameDecisions(reference.best_decisions,
                        resumed.best_decisions);
    EXPECT_EQ(reference.best_latency_us, resumed.best_latency_us);
    EXPECT_EQ(reference.history, resumed.history);
    EXPECT_EQ(reference.trials_measured, resumed.trials_measured);
    EXPECT_EQ(reference.invalid_filtered, resumed.invalid_filtered);
    EXPECT_EQ(reference.race_filtered, resumed.race_filtered);
    EXPECT_EQ(reference.bounds_filtered, resumed.bounds_filtered);
    EXPECT_EQ(reference.runtime_filtered, resumed.runtime_filtered);
    EXPECT_EQ(reference.tuning_cost_us, resumed.tuning_cost_us);
    EXPECT_EQ(reference.memo_hits, resumed.memo_hits);
    EXPECT_EQ(reference.memo_measure_hits, resumed.memo_measure_hits);
    // Even the winning program: the resume path re-derives it from the
    // journaled decision trace, byte for byte.
    EXPECT_EQ(funcToString(reference.best_func),
              funcToString(resumed.best_func));
}

TEST(ParallelSearchTest, WatchdogCutsOverrunningStagesShort)
{
    // Candidates that sleep past the stage budget are abandoned as
    // timeouts by the cooperative watchdog — the search finishes with
    // whatever it processed in time instead of hanging.
    workloads::OpSpec op = workloads::gmm(128, 128, 128);
    hwsim::GpuDevice gpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier("C", /*gpu=*/true);
    meta::TuneOptions options = searchOptions(2);
    options.stage_timeout_s = 0.02;

    failpoint::ScopedFailpoints slow("search.instantiate=delay(1,30)");
    meta::TuneResult result =
        meta::evolutionarySearch(op.func, sketch, gpu, options);

    EXPECT_GT(result.timeout_filtered, 0)
        << "every candidate beat a 20 ms budget despite a 30 ms sleep";
    EXPECT_GT(result.timings.watchdog_overruns, 0);
    EXPECT_EQ(result.timings.watchdog_timeout_s, 0.02);
    EXPECT_TRUE(std::isfinite(result.best_latency_us));
    EXPECT_EQ(result.history.size(),
              static_cast<size_t>(options.generations) + 1);
}

TEST(ParallelSearchTest, CostModelFallbackKeepsSearchAlive)
{
    // Every retrain of the cost model fails; the search keeps the last
    // good model (here: the untrained initial one), counts each
    // fallback, and still finishes.
    workloads::OpSpec op = workloads::gmm(128, 128, 128);
    hwsim::GpuDevice gpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier("C", /*gpu=*/true);

    failpoint::ScopedFailpoints chaos("gbdt.fit=throw");
    meta::TuneResult result =
        meta::evolutionarySearch(op.func, sketch, gpu, searchOptions(2));

    EXPECT_GT(result.model_fallbacks, 0);
    EXPECT_TRUE(std::isfinite(result.best_latency_us));
    EXPECT_EQ(result.history.size(),
              static_cast<size_t>(searchOptions(2).generations) + 1);
}

TEST(RngTest, WeightedIndexNeverSelectsZeroWeightAtBoundary)
{
    // Regression: r01 == 0 used to land on a leading zero-weight entry
    // (`r - 0 <= 0` matched immediately); zero weight means "never
    // pick me", even at the boundary.
    EXPECT_EQ(Rng::weightedIndex({0.0, 1.0}, 0.0), 1u);
    EXPECT_EQ(Rng::weightedIndex({0.0, 0.0, 5.0, 0.0}, 0.0), 2u);
    // Interior zero entries are skipped too.
    EXPECT_EQ(Rng::weightedIndex({1.0, 0.0, 1.0}, 0.6), 2u);
    // A float sliver past the last positive weight lands on it instead
    // of falling off the end.
    EXPECT_EQ(Rng::weightedIndex({1.0, 1.0, 0.0}, 0.999999999), 1u);
}

TEST(RngTest, WeightedChoiceValidatesAndSkipsZeros)
{
    Rng rng(5);
    // Zero-weight entries are never drawn when any weight is positive.
    for (int i = 0; i < 2000; ++i) {
        size_t pick = rng.weightedChoice({0.0, 1.0, 0.0, 2.0});
        EXPECT_TRUE(pick == 1 || pick == 3) << "picked " << pick;
    }
    // All-zero weights degrade to a uniform pick instead of crashing.
    std::set<size_t> seen;
    for (int i = 0; i < 64; ++i) {
        seen.insert(rng.weightedChoice({0.0, 0.0, 0.0}));
    }
    for (size_t pick : seen) EXPECT_LT(pick, 3u);
    EXPECT_GT(seen.size(), 1u);
    // Negative or non-finite weights are caller bugs, not silent skew.
    EXPECT_THROW(rng.weightedChoice({1.0, -0.5}), InternalError);
    EXPECT_THROW(rng.weightedChoice({1.0, std::nan("")}),
                 InternalError);
    EXPECT_THROW(
        rng.weightedChoice({std::numeric_limits<double>::infinity()}),
        InternalError);
    EXPECT_THROW(rng.weightedChoice({}), InternalError);
}

TEST(RngTest, RandIntIsUnbiasedNearTheWordSize)
{
    // Regression for the modulo bias of `next() % n`. With
    // n = 3 * 2^61, the biased mapping lands in [0, 2^62) with
    // probability 3/4 (those outcomes have three 64-bit preimages,
    // the rest two); the uniform distribution puts only 2/3 there.
    // 4000 draws resolve that 0.083 gap at ~11 sigma, so this fails
    // reliably against the old implementation and passes against
    // rejection sampling.
    Rng rng(123);
    const int64_t n = int64_t{3} << 61;
    const int64_t cut = int64_t{1} << 62;
    const int kDraws = 4000;
    int below = 0;
    for (int i = 0; i < kDraws; ++i) {
        int64_t v = rng.randInt(n);
        ASSERT_GE(v, 0);
        ASSERT_LT(v, n);
        if (v < cut) ++below;
    }
    double fraction = static_cast<double>(below) / kDraws;
    EXPECT_NEAR(fraction, 2.0 / 3.0, 0.04)
        << "biased modulo mapping would give ~0.75";
}

TEST(ParallelSearchTest, NumericCheckFiltersDeterministically)
{
    // Injected mismatches are keyed by structural hash, so the numeric
    // gate rejects the same candidates at every parallelism setting and
    // the full result — including the numeric_filtered counter — stays
    // byte-identical. The surviving checks really execute candidates
    // through the VM against the tree-walked oracle.
    registerBuiltinIntrinsics();
    workloads::OpSpec op = workloads::gmm(32, 32, 32);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    failpoint::ScopedFailpoints guard(
        "seed=11; search.numeric_check=error(0.5)");
    meta::TuneOptions serial_opts = searchOptions(1);
    serial_opts.numeric_check_topk = 3;
    meta::TuneOptions parallel_opts = searchOptions(4);
    parallel_opts.numeric_check_topk = 3;

    meta::TuneResult serial = meta::autoTune(
        task, gpu, serial_opts, meta::TunerStyle::kTensorIR);
    meta::TuneResult parallel = meta::autoTune(
        task, gpu, parallel_opts, meta::TunerStyle::kTensorIR);

    EXPECT_GT(serial.numeric_filtered, 0)
        << "the chaos schedule should reject some checked candidates";
    EXPECT_EQ(serial.numeric_filtered, parallel.numeric_filtered);
    EXPECT_EQ(serial.runtime_filtered, parallel.runtime_filtered);
    EXPECT_EQ(serial.trials_measured, parallel.trials_measured);
    EXPECT_EQ(serial.best_latency_us, parallel.best_latency_us);
    EXPECT_EQ(serial.history, parallel.history);
    expectSameDecisions(serial.best_decisions, parallel.best_decisions);
    EXPECT_EQ(funcToString(serial.best_func),
              funcToString(parallel.best_func));
}

TEST(ParallelSearchTest, NumericCheckPassesHonestCandidates)
{
    // Without injection every schedule the search produces computes the
    // same function as the workload, so the spot-check must reject
    // nothing and leave the search trajectory untouched.
    registerBuiltinIntrinsics();
    workloads::OpSpec op = workloads::gmm(32, 32, 32);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneOptions checked_opts = searchOptions(1);
    checked_opts.numeric_check_topk = 2;

    meta::TuneResult plain = meta::autoTune(
        task, gpu, searchOptions(1), meta::TunerStyle::kTensorIR);
    meta::TuneResult checked = meta::autoTune(
        task, gpu, checked_opts, meta::TunerStyle::kTensorIR);

    EXPECT_EQ(checked.numeric_filtered, 0);
    EXPECT_EQ(plain.best_latency_us, checked.best_latency_us);
    EXPECT_EQ(plain.history, checked.history);
    EXPECT_EQ(plain.trials_measured, checked.trials_measured);
}

TEST(RngDeriveTest, DeterministicAndIndependent)
{
    Rng a = Rng::derive(7, 3, 11);
    Rng b = Rng::derive(7, 3, 11);
    EXPECT_EQ(a.next(), b.next());
    // Nearby streams do not collide on their first draws.
    std::set<uint64_t> first_draws;
    for (uint64_t gen = 0; gen < 8; ++gen) {
        for (uint64_t child = 0; child < 64; ++child) {
            first_draws.insert(Rng::derive(1, gen, child).next());
        }
    }
    EXPECT_EQ(first_draws.size(), 8u * 64u);
}

} // namespace
} // namespace tir
