/**
 * @file
 * The parallel tuning pipeline's determinism contract: for a fixed
 * seed, tuning results are byte-identical for any `parallelism`
 * setting, because candidate RNGs derive from (seed, generation,
 * child_index) and all folds run sequentially in candidate order. Also
 * covers the structural-hash memo cache and the thread-pool / RNG
 * building blocks.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "ir/printer.h"
#include "meta/search.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

namespace tir {
namespace {

void
expectSameDecisions(const std::vector<Decision>& a,
                    const std::vector<Decision>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind) << "decision " << i;
        EXPECT_EQ(a[i].extent, b[i].extent) << "decision " << i;
        EXPECT_EQ(a[i].number, b[i].number) << "decision " << i;
        EXPECT_EQ(a[i].max_innermost, b[i].max_innermost)
            << "decision " << i;
        EXPECT_EQ(a[i].values, b[i].values) << "decision " << i;
        EXPECT_EQ(a[i].num_candidates, b[i].num_candidates)
            << "decision " << i;
    }
}

meta::TuneOptions
searchOptions(int parallelism)
{
    meta::TuneOptions options;
    options.population = 8;
    options.generations = 4;
    options.children_per_generation = 16;
    options.measured_per_generation = 6;
    options.seed = 91;
    options.parallelism = parallelism;
    return options;
}

TEST(ParallelSearchTest, ByteIdenticalAcrossParallelism)
{
    workloads::OpSpec op = workloads::gmm(256, 256, 256);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};

    meta::TuneResult serial = meta::autoTune(
        task, gpu, searchOptions(1), meta::TunerStyle::kTensorIR);
    meta::TuneResult parallel = meta::autoTune(
        task, gpu, searchOptions(4), meta::TunerStyle::kTensorIR);

    EXPECT_EQ(serial.parallelism_used, 1);
    EXPECT_EQ(parallel.parallelism_used, 4);

    // The contract: identical winners, trajectories, and accounting.
    expectSameDecisions(serial.best_decisions, parallel.best_decisions);
    EXPECT_EQ(serial.best_latency_us, parallel.best_latency_us);
    EXPECT_EQ(serial.best_sketch, parallel.best_sketch);
    EXPECT_EQ(serial.history, parallel.history);
    EXPECT_EQ(serial.trials_measured, parallel.trials_measured);
    EXPECT_EQ(serial.invalid_filtered, parallel.invalid_filtered);
    EXPECT_EQ(serial.tuning_cost_us, parallel.tuning_cost_us);
    EXPECT_EQ(serial.memo_hits, parallel.memo_hits);
    EXPECT_EQ(serial.memo_measure_hits, parallel.memo_measure_hits);
    // Even the winning program is the same, byte for byte.
    EXPECT_EQ(funcToString(serial.best_func),
              funcToString(parallel.best_func));
}

TEST(ParallelSearchTest, MemoCacheHitsDuplicateCandidates)
{
    // Mutation frequently re-derives an already-seen schedule (a tile
    // factor moved back, two parents producing the same child); each
    // such duplicate must hit the structural-hash memo rather than pay
    // feature extraction again.
    workloads::OpSpec op = workloads::gmm(128, 128, 128);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneOptions options = searchOptions(2);
    options.generations = 6;
    meta::TuneResult result =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR);

    EXPECT_GT(result.memo_hits, 0)
        << "expected duplicate candidates across generations";
    // Duplicates that reach the measurement stage are served from the
    // memo (no re-run) but still charged the simulated profiling cost,
    // so Table 1 accounting stays comparable across personas.
    EXPECT_GT(result.memo_measure_hits, 0);
    // Sanity-check that accounting: every measured trial — memo hit or
    // not — was charged at least the per-measurement overhead.
    EXPECT_GE(result.tuning_cost_us,
              result.trials_measured * options.measure_overhead_us);
}

TEST(ParallelSearchTest, StageTimingsAreRecorded)
{
    workloads::OpSpec op = workloads::gmm(128, 128, 128);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneOptions options = searchOptions(2);
    options.generations = 2;
    meta::TuneResult result =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR);
    EXPECT_GT(result.timings.generate_s, 0.0);
    EXPECT_GT(result.timings.evaluate_s, 0.0);
    EXPECT_GT(result.timings.total_s, 0.0);
    EXPECT_GE(result.timings.total_s,
              result.timings.generate_s + result.timings.evaluate_s);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce)
{
    support::ThreadPool pool(4);
    EXPECT_EQ(pool.parallelism(), 4);
    std::vector<std::atomic<int>> counts(1000);
    pool.parallelFor(counts.size(),
                     [&](size_t i) { counts[i].fetch_add(1); });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
    // Reusable for further batches.
    std::atomic<long> sum{0};
    pool.parallelFor(100, [&](size_t i) {
        sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, PropagatesWorkerExceptions)
{
    support::ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](size_t i) {
                                      if (i == 13) {
                                          throw std::runtime_error("boom");
                                      }
                                  }),
                 std::runtime_error);
    // The pool survives a failed batch.
    std::atomic<int> ran{0};
    pool.parallelFor(8, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, DestructionRightAfterBatchIsClean)
{
    // Regression: ~ThreadPool must join workers before tearing down the
    // mutex/condition variables they wait on. Destroying the pool
    // immediately after a batch — while workers may still be inside
    // batch_ready_.wait — is exactly the end-of-search pattern.
    for (int iter = 0; iter < 50; ++iter) {
        support::ThreadPool pool(4);
        std::atomic<int> ran{0};
        pool.parallelFor(16, [&](size_t) { ran.fetch_add(1); });
        EXPECT_EQ(ran.load(), 16);
    }
}

TEST(ThreadPoolTest, SingleThreadRunsInline)
{
    support::ThreadPool pool(1);
    EXPECT_EQ(pool.parallelism(), 1);
    std::vector<int> order;
    pool.parallelFor(5, [&](size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RngDeriveTest, DeterministicAndIndependent)
{
    Rng a = Rng::derive(7, 3, 11);
    Rng b = Rng::derive(7, 3, 11);
    EXPECT_EQ(a.next(), b.next());
    // Nearby streams do not collide on their first draws.
    std::set<uint64_t> first_draws;
    for (uint64_t gen = 0; gen < 8; ++gen) {
        for (uint64_t child = 0; child < 64; ++child) {
            first_draws.insert(Rng::derive(1, gen, child).next());
        }
    }
    EXPECT_EQ(first_draws.size(), 8u * 64u);
}

} // namespace
} // namespace tir
