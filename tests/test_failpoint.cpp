/**
 * @file
 * The failpoint framework: spec parsing, deterministic seeded triggers,
 * the zero-cost disabled path, counter- vs data-keyed sites, @skip,
 * byte corruption, and stats accounting.
 */
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/failpoint.h"
#include "support/logging.h"

namespace tir {
namespace {

/** Every test leaves the global registry the way it found it. */
class FailpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = failpoint::currentSpec(); }
    void TearDown() override { failpoint::configure(saved_); }

  private:
    std::string saved_;
};

TEST_F(FailpointTest, DisabledPathIsInert)
{
    failpoint::configure("");
    EXPECT_FALSE(failpoint::enabled());
    // No schedule: sites never fire, never throw, never touch stats.
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(failpoint::inject("some.site"));
        EXPECT_FALSE(failpoint::inject("some.site", 42));
    }
    std::string data = "payload";
    EXPECT_FALSE(failpoint::injectCorrupt("some.site", data));
    EXPECT_EQ(data, "payload");
    EXPECT_EQ(failpoint::stats("some.site").evaluated, 0u);
}

TEST_F(FailpointTest, UnconfiguredSitesStayInertUnderASchedule)
{
    failpoint::configure("other.site=throw");
    EXPECT_TRUE(failpoint::enabled());
    EXPECT_FALSE(failpoint::inject("some.site"));
    EXPECT_THROW(failpoint::inject("other.site"),
                 failpoint::InjectedFault);
}

TEST_F(FailpointTest, SeededTriggersAreDeterministic)
{
    // The same (seed, site, probability) schedule fires on the same
    // evaluation indices, run after run.
    auto firedSet = [&] {
        failpoint::configure("seed=99; chaos.site=error(0.3)");
        std::set<int> fired;
        for (int i = 0; i < 200; ++i) {
            if (failpoint::inject("chaos.site")) fired.insert(i);
        }
        return fired;
    };
    std::set<int> first = firedSet();
    std::set<int> second = firedSet();
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty()) << "p=0.3 over 200 draws never fired";
    EXPECT_LT(first.size(), 200u) << "p=0.3 fired every single time";

    // A different seed draws a different set.
    failpoint::configure("seed=100; chaos.site=error(0.3)");
    std::set<int> other;
    for (int i = 0; i < 200; ++i) {
        if (failpoint::inject("chaos.site")) other.insert(i);
    }
    EXPECT_NE(first, other);
}

TEST_F(FailpointTest, DataKeyedTriggerIsPureFunctionOfKey)
{
    failpoint::configure("seed=7; keyed.site=error(0.5)");
    // Call order must not matter for keyed sites: the decision is a
    // pure function of (seed, site, key) — the property that keeps
    // chaos schedules parallelism-invariant in the search.
    std::vector<bool> forward;
    for (uint64_t k = 0; k < 64; ++k) {
        forward.push_back(failpoint::inject("keyed.site", k));
    }
    std::vector<bool> backward(64);
    for (uint64_t k = 64; k-- > 0;) {
        backward[k] = failpoint::inject("keyed.site", k);
    }
    EXPECT_EQ(forward, backward);
}

TEST_F(FailpointTest, SkipSuppressesEarlyEvaluations)
{
    // `throw(1)@3` is the "crash exactly at the N-th call" tool: the
    // first three evaluations pass, the fourth throws.
    failpoint::configure("crash.site=throw(1)@3");
    EXPECT_FALSE(failpoint::inject("crash.site"));
    EXPECT_FALSE(failpoint::inject("crash.site"));
    EXPECT_FALSE(failpoint::inject("crash.site"));
    EXPECT_THROW(failpoint::inject("crash.site"),
                 failpoint::InjectedFault);
}

TEST_F(FailpointTest, CorruptFlipsBytesDeterministically)
{
    failpoint::configure("seed=5; disk.site=corrupt(1,3)");
    std::string original(256, 'x');
    std::string a = original;
    EXPECT_TRUE(failpoint::injectCorrupt("disk.site", a));
    EXPECT_NE(a, original) << "corrupt action left the buffer intact";
    EXPECT_EQ(a.size(), original.size());
    // Same schedule, same evaluation index, same buffer → same damage.
    failpoint::configure("seed=5; disk.site=corrupt(1,3)");
    std::string b = original;
    EXPECT_TRUE(failpoint::injectCorrupt("disk.site", b));
    EXPECT_EQ(a, b);
}

TEST_F(FailpointTest, CorruptAtPlainSiteDegradesToError)
{
    failpoint::configure("plain.site=corrupt");
    EXPECT_TRUE(failpoint::inject("plain.site"));
}

TEST_F(FailpointTest, StatsCountEvaluationsAndFires)
{
    failpoint::configure("seed=3; counted.site=error(0.5)");
    uint64_t fired = 0;
    for (int i = 0; i < 100; ++i) {
        if (failpoint::inject("counted.site")) ++fired;
    }
    failpoint::SiteStats stats = failpoint::stats("counted.site");
    EXPECT_EQ(stats.evaluated, 100u);
    EXPECT_EQ(stats.fired, fired);
    EXPECT_GT(stats.fired, 0u);
    auto all = failpoint::allStats();
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].first, "counted.site");
    EXPECT_EQ(all[0].second.evaluated, 100u);
}

TEST_F(FailpointTest, MalformedSpecsThrowAndLeaveScheduleIntact)
{
    failpoint::configure("keep.site=error");
    EXPECT_THROW(failpoint::configure("no_equals_sign"), FatalError);
    EXPECT_THROW(failpoint::configure("x=unknownkind"), FatalError);
    EXPECT_THROW(failpoint::configure("x=error(1.5)"), FatalError);
    EXPECT_THROW(failpoint::configure("x=error(0.5"), FatalError);
    EXPECT_THROW(failpoint::configure("x=throw@abc"), FatalError);
    EXPECT_THROW(failpoint::configure("seed=abc"), FatalError);
    // The previous schedule survived every failed configure.
    EXPECT_EQ(failpoint::currentSpec(), "keep.site=error");
    EXPECT_TRUE(failpoint::inject("keep.site"));
}

TEST_F(FailpointTest, ScopedFailpointsRestoresOnExit)
{
    failpoint::configure("outer.site=error");
    {
        failpoint::ScopedFailpoints scoped("inner.site=error");
        EXPECT_TRUE(failpoint::inject("inner.site"));
        EXPECT_FALSE(failpoint::inject("outer.site"));
    }
    EXPECT_EQ(failpoint::currentSpec(), "outer.site=error");
    EXPECT_TRUE(failpoint::inject("outer.site"));
    EXPECT_FALSE(failpoint::inject("inner.site"));
}

TEST_F(FailpointTest, DelayActionSleepsThenDoesNotFire)
{
    failpoint::configure("slow.site=delay(1,5)");
    // A delay site slows the caller but reports "not fired": the
    // caller's logic is unaffected, only its wall-clock (the tool for
    // watchdog tests).
    EXPECT_FALSE(failpoint::inject("slow.site"));
    EXPECT_EQ(failpoint::stats("slow.site").fired, 1u);
}

} // namespace
} // namespace tir
