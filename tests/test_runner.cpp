/**
 * @file
 * Fork-server measurement runner tests: strict env parsing for the
 * isolation knobs (TENSORIR_ISOLATE, TENSORIR_MEASURE_TIMEOUT_MS,
 * TENSORIR_RUNNER_RETRIES), direct MeasureRunner classification
 * (reject / injected SIGABRT / injected SIGSEGV / timeout-killed hang /
 * exhausted startup retries), the search-level crash_filtered and
 * hang_filtered accounting under failpoint-driven worker death, the
 * TENSORIR_ISOLATE=off degradation path, and the kill-mid-checkpoint
 * resume contract with crash classifications journaled (a resumed tune
 * must replay crashed candidates from the journal byte-identically,
 * never re-running code known to kill its worker).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <limits>
#include <optional>

#include <csignal>

#include "ir/printer.h"
#include "meta/journal.h"
#include "meta/measure.h"
#include "meta/runner.h"
#include "meta/search.h"
#include "meta/sketch.h"
#include "runtime/jit.h"
#include "support/failpoint.h"
#include "support/logging.h"
#include "workloads/workloads.h"

#include "test_util.h"

namespace tir {
namespace {

/** Set an environment variable for one scope, restoring the previous
 *  value (or unsetting) on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        if (const char* old = std::getenv(name)) saved_ = old;
        if (value) {
            ::setenv(name, value, 1);
        } else {
            ::unsetenv(name);
        }
    }
    ~ScopedEnv()
    {
        if (saved_) {
            ::setenv(name_.c_str(), saved_->c_str(), 1);
        } else {
            ::unsetenv(name_.c_str());
        }
    }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

  private:
    std::string name_;
    std::optional<std::string> saved_;
};

// --- env parsing: the isolation knobs ----------------------------------

TEST(EnvParsing, IsolateRejectsNonFlags)
{
    // A flag must be exactly 1/on/0/off: "yes", case variants, and
    // numbers other than 0/1 are typos that must fail loudly instead
    // of silently running without (or with) isolation.
    for (const char* bad : {"yes", "true", "ON", "2", " 1", "off "}) {
        ScopedEnv env("TENSORIR_ISOLATE", bad);
        EXPECT_THROW(meta::resolveIsolate(true), FatalError)
            << "value \"" << bad << "\" must be rejected";
    }
}

TEST(EnvParsing, IsolateAcceptsFlagsAndFallsBack)
{
    {
        ScopedEnv env("TENSORIR_ISOLATE", "off");
        EXPECT_FALSE(meta::resolveIsolate(true));
    }
    {
        ScopedEnv env("TENSORIR_ISOLATE", "0");
        EXPECT_FALSE(meta::resolveIsolate(true));
    }
    {
        ScopedEnv env("TENSORIR_ISOLATE", "on");
        EXPECT_TRUE(meta::resolveIsolate(false));
    }
    {
        ScopedEnv env("TENSORIR_ISOLATE", "1");
        EXPECT_TRUE(meta::resolveIsolate(false));
    }
    {
        ScopedEnv env("TENSORIR_ISOLATE", "");
        EXPECT_TRUE(meta::resolveIsolate(true));
        EXPECT_FALSE(meta::resolveIsolate(false));
    }
    {
        ScopedEnv env("TENSORIR_ISOLATE", nullptr);
        EXPECT_TRUE(meta::resolveIsolate(true));
    }
}

TEST(EnvParsing, MeasureTimeoutRejectsGarbageAndOutOfRange)
{
    for (const char* bad :
         {"abc", "-1", "+10", "10s", " 10", "86400001"}) {
        ScopedEnv env("TENSORIR_MEASURE_TIMEOUT_MS", bad);
        EXPECT_THROW(meta::resolveMeasureTimeoutMs(10000), FatalError)
            << "value \"" << bad << "\" must be rejected";
    }
}

TEST(EnvParsing, MeasureTimeoutAcceptsValidAndFallsBack)
{
    {
        ScopedEnv env("TENSORIR_MEASURE_TIMEOUT_MS", "500");
        EXPECT_EQ(meta::resolveMeasureTimeoutMs(10000), 500.0);
    }
    {
        // 0 is meaningful: no hard timeout.
        ScopedEnv env("TENSORIR_MEASURE_TIMEOUT_MS", "0");
        EXPECT_EQ(meta::resolveMeasureTimeoutMs(10000), 0.0);
    }
    {
        ScopedEnv env("TENSORIR_MEASURE_TIMEOUT_MS", "");
        EXPECT_EQ(meta::resolveMeasureTimeoutMs(10000), 10000.0);
    }
    {
        ScopedEnv env("TENSORIR_MEASURE_TIMEOUT_MS", nullptr);
        EXPECT_EQ(meta::resolveMeasureTimeoutMs(2500), 2500.0);
    }
}

TEST(EnvParsing, RunnerRetriesRejectsGarbageAndOutOfRange)
{
    for (const char* bad : {"abc", "-1", "2x", "101"}) {
        ScopedEnv env("TENSORIR_RUNNER_RETRIES", bad);
        EXPECT_THROW(meta::resolveRunnerRetries(2), FatalError)
            << "value \"" << bad << "\" must be rejected";
    }
}

TEST(EnvParsing, RunnerRetriesAcceptsValidAndFallsBack)
{
    {
        ScopedEnv env("TENSORIR_RUNNER_RETRIES", "0");
        EXPECT_EQ(meta::resolveRunnerRetries(2), 0);
    }
    {
        ScopedEnv env("TENSORIR_RUNNER_RETRIES", "5");
        EXPECT_EQ(meta::resolveRunnerRetries(2), 5);
    }
    {
        ScopedEnv env("TENSORIR_RUNNER_RETRIES", "");
        EXPECT_EQ(meta::resolveRunnerRetries(2), 2);
    }
}

// --- direct MeasureRunner classification -------------------------------
// These need fork + pipes but no toolchain: the worker's failure paths
// fire before (or instead of) any dlopen of real generated code.

meta::RunnerRequest
dummyRequest(const PrimFunc& workload, uint64_t key)
{
    meta::RunnerRequest req;
    req.object_path = "/nonexistent/tensorir-runner-test.so";
    req.entry_symbol = "tensorir_entry";
    req.num_params = workload->params.size();
    req.warmup = 0;
    req.repeats = 1;
    req.key = key;
    return req;
}

TEST(MeasureRunnerTest, RejectsWhenKernelCannotLoad)
{
    if (!meta::MeasureRunner::available()) {
        GTEST_SKIP() << "process isolation unavailable on this platform";
    }
    PrimFunc workload = testutil::matmul(4, 4, 4);
    failpoint::ScopedFailpoints quiet("");
    meta::MeasureRunner runner(workload, meta::RunnerConfig{});
    meta::RunnerResult r = runner.run(dummyRequest(workload, 1));
    // The worker ran and answered: a missing .so is a per-candidate
    // reject, not a worker failure — no retry, no crash.
    EXPECT_EQ(r.status, meta::RunnerStatus::kReject);
    EXPECT_EQ(r.detail, "dlopen");
    EXPECT_EQ(r.retries, 0);
    // The worker survives to serve the next request.
    meta::RunnerResult again = runner.run(dummyRequest(workload, 2));
    EXPECT_EQ(again.status, meta::RunnerStatus::kReject);
}

TEST(MeasureRunnerTest, ClassifiesInjectedAbortAsCrash)
{
    if (!meta::MeasureRunner::available()) {
        GTEST_SKIP() << "process isolation unavailable on this platform";
    }
    PrimFunc workload = testutil::matmul(4, 4, 4);
    // Configured before construction: workers inherit the failpoint
    // registry at fork time.
    failpoint::ScopedFailpoints chaos("runner.crash=error(1)");
    meta::MeasureRunner runner(workload, meta::RunnerConfig{});
    meta::RunnerResult r = runner.run(dummyRequest(workload, 7));
    EXPECT_EQ(r.status, meta::RunnerStatus::kCrash);
    EXPECT_EQ(r.term_signal, SIGABRT);
    // Deterministic death is never retried.
    EXPECT_EQ(r.retries, 0);
}

TEST(MeasureRunnerTest, ClassifiesInjectedSegfaultAsCrash)
{
    if (!meta::MeasureRunner::available()) {
        GTEST_SKIP() << "process isolation unavailable on this platform";
    }
    PrimFunc workload = testutil::matmul(4, 4, 4);
    failpoint::ScopedFailpoints chaos("runner.segv=error(1)");
    meta::MeasureRunner runner(workload, meta::RunnerConfig{});
    meta::RunnerResult r = runner.run(dummyRequest(workload, 7));
    EXPECT_EQ(r.status, meta::RunnerStatus::kCrash);
    // Normally the worker dies by the raw signal. Under a sanitizer
    // runtime the in-child SEGV handler reports and exits nonzero
    // instead; either death is classified as a crash.
    EXPECT_TRUE(r.term_signal == SIGSEGV ||
                (r.term_signal == 0 && r.exit_code != 0))
        << "term_signal=" << r.term_signal
        << " exit_code=" << r.exit_code;
    // The crashed worker was replaced: the next candidate still runs.
    failpoint::configure("");
    meta::RunnerResult next = runner.run(dummyRequest(workload, 8));
    EXPECT_EQ(next.status, meta::RunnerStatus::kReject);
}

TEST(MeasureRunnerTest, KillsHungWorkerAtTimeout)
{
    if (!meta::MeasureRunner::available()) {
        GTEST_SKIP() << "process isolation unavailable on this platform";
    }
    PrimFunc workload = testutil::matmul(4, 4, 4);
    failpoint::ScopedFailpoints chaos("runner.hang=error(1)");
    meta::RunnerConfig config;
    config.timeout_ms = 200; // the hard SIGKILL deadline under test
    meta::MeasureRunner runner(workload, config);
    meta::RunnerResult r = runner.run(dummyRequest(workload, 7));
    EXPECT_EQ(r.status, meta::RunnerStatus::kHang);
    EXPECT_EQ(r.term_signal, SIGKILL);
    EXPECT_EQ(r.retries, 0);
}

TEST(MeasureRunnerTest, RetriesStartupFailureThenReportsUnavailable)
{
    if (!meta::MeasureRunner::available()) {
        GTEST_SKIP() << "process isolation unavailable on this platform";
    }
    PrimFunc workload = testutil::matmul(4, 4, 4);
    failpoint::ScopedFailpoints chaos("runner.spawn=error(1)");
    meta::RunnerConfig config;
    config.retries = 2;
    config.backoff_ms = 1;
    meta::MeasureRunner runner(workload, config);
    meta::RunnerResult r = runner.run(dummyRequest(workload, 7));
    // Transient startup failure: retried with backoff, then surfaced
    // as unavailable (the caller degrades to in-process measurement).
    EXPECT_EQ(r.status, meta::RunnerStatus::kUnavailable);
    EXPECT_EQ(r.retries, config.retries);
    // One spawn attempt in the constructor plus one per run() attempt.
    EXPECT_GE(failpoint::stats("runner.spawn").fired,
              static_cast<uint64_t>(config.retries) + 2);
}

// --- search-level accounting under worker death ------------------------

/** Private JIT cache + neutral engine env, like JitMeasurerTest: these
 *  tests compile real kernels and must not share cache state with the
 *  ambient CI environment. */
class RunnerSearchTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/tensorir-runner-test-XXXXXX";
        char* dir = ::mkdtemp(tmpl);
        ASSERT_NE(dir, nullptr);
        cache_dir_ = dir;
        cache_env_.emplace("TENSORIR_JIT_CACHE", cache_dir_.c_str());
        engine_env_.emplace("TENSORIR_ENGINE", nullptr);
        treewalk_env_.emplace("TENSORIR_FORCE_TREEWALK", nullptr);
        isolate_env_.emplace("TENSORIR_ISOLATE", nullptr);
        runtime::jitResetForTesting();
    }

    void
    TearDown() override
    {
        runtime::jitResetForTesting();
        std::error_code ec;
        std::filesystem::remove_all(cache_dir_, ec);
    }

    static meta::TuneOptions
    options(uint64_t seed)
    {
        meta::TuneOptions opts;
        opts.population = 4;
        opts.generations = 2;
        opts.children_per_generation = 8;
        opts.measured_per_generation = 3;
        opts.seed = seed;
        opts.parallelism = 1;
        opts.measure_backend = "jit";
        opts.measure_warmup = 0;
        opts.measure_repeats_real = 1;
        return opts;
    }

    std::string cache_dir_;
    std::optional<ScopedEnv> cache_env_;
    std::optional<ScopedEnv> engine_env_;
    std::optional<ScopedEnv> treewalk_env_;
    std::optional<ScopedEnv> isolate_env_;
};

TEST_F(RunnerSearchTest, CrashedCandidatesAreFilteredNotFatal)
{
    if (!meta::MeasureRunner::available() || !runtime::jitAvailable()) {
        GTEST_SKIP() << "needs fork isolation and a native toolchain";
    }
    workloads::OpSpec op =
        workloads::gmm(16, 16, 16, DataType::f32(), DataType::f32());
    hwsim::CpuDevice cpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier("C", /*gpu=*/false);
    // Half the candidates abort their worker (data-keyed, so the same
    // candidates crash on every run): the tune must still complete,
    // with the victims counted as crashes and the survivors measured.
    failpoint::ScopedFailpoints chaos(
        "seed=11; runner.crash=error(0.5)");
    meta::TuneResult result =
        meta::evolutionarySearch(op.func, sketch, cpu, options(91));
    EXPECT_GT(result.crash_filtered, 0);
    EXPECT_EQ(result.hang_filtered, 0);
    // Crashes are rejected before commit: not trials.
    EXPECT_EQ(result.trials_measured,
              result.measured_valid + result.measured_invalid);
    EXPECT_GT(result.trials_measured, 0);
    EXPECT_TRUE(std::isfinite(result.best_latency_us));
}

TEST_F(RunnerSearchTest, SegfaultingCandidatesAreFilteredNotFatal)
{
    if (!meta::MeasureRunner::available() || !runtime::jitAvailable()) {
        GTEST_SKIP() << "needs fork isolation and a native toolchain";
    }
    workloads::OpSpec op =
        workloads::gmm(16, 16, 16, DataType::f32(), DataType::f32());
    hwsim::CpuDevice cpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier("C", /*gpu=*/false);
    failpoint::ScopedFailpoints chaos(
        "seed=11; runner.segv=error(0.5)");
    meta::TuneResult result =
        meta::evolutionarySearch(op.func, sketch, cpu, options(91));
    EXPECT_GT(result.crash_filtered, 0);
    EXPECT_EQ(result.trials_measured,
              result.measured_valid + result.measured_invalid);
    EXPECT_GT(result.trials_measured, 0);
}

TEST_F(RunnerSearchTest, HangingCandidatesAreTimeoutKilledAndFiltered)
{
    if (!meta::MeasureRunner::available() || !runtime::jitAvailable()) {
        GTEST_SKIP() << "needs fork isolation and a native toolchain";
    }
    workloads::OpSpec op =
        workloads::gmm(16, 16, 16, DataType::f32(), DataType::f32());
    hwsim::CpuDevice cpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier("C", /*gpu=*/false);
    // A short hard timeout keeps the SIGKILL path fast; the hang
    // failpoint wedges the worker in a pause() loop the cooperative
    // watchdog could never interrupt.
    ScopedEnv timeout("TENSORIR_MEASURE_TIMEOUT_MS", "300");
    failpoint::ScopedFailpoints chaos(
        "seed=11; runner.hang=error(0.5)");
    meta::TuneResult result =
        meta::evolutionarySearch(op.func, sketch, cpu, options(91));
    EXPECT_GT(result.hang_filtered, 0);
    EXPECT_EQ(result.crash_filtered, 0);
    EXPECT_EQ(result.trials_measured,
              result.measured_valid + result.measured_invalid);
    EXPECT_GT(result.trials_measured, 0);
}

TEST_F(RunnerSearchTest, ExhaustedStartupRetriesDegradeToInProcess)
{
    if (!meta::MeasureRunner::available() || !runtime::jitAvailable()) {
        GTEST_SKIP() << "needs fork isolation and a native toolchain";
    }
    workloads::OpSpec op =
        workloads::gmm(16, 16, 16, DataType::f32(), DataType::f32());
    hwsim::CpuDevice cpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier("C", /*gpu=*/false);
    ScopedEnv retries("TENSORIR_RUNNER_RETRIES", "1");
    failpoint::ScopedFailpoints chaos("runner.spawn=error(1)");
    meta::TuneResult result =
        meta::evolutionarySearch(op.func, sketch, cpu, options(91));
    // Isolation never came up, so the backend fell back to in-process
    // measurement: the tune completes with real trials and no crashes.
    EXPECT_EQ(result.crash_filtered, 0);
    EXPECT_EQ(result.hang_filtered, 0);
    EXPECT_GT(result.trials_measured, 0);
    EXPECT_TRUE(std::isfinite(result.best_latency_us));
    // ctor attempt + (retries + 1) run() attempts, at least.
    EXPECT_GE(failpoint::stats("runner.spawn").fired, 3u);
}

TEST_F(RunnerSearchTest, IsolateOffMatchesInProcessAccounting)
{
    if (!runtime::jitAvailable()) {
        GTEST_SKIP() << "needs a native toolchain";
    }
    workloads::OpSpec op =
        workloads::gmm(16, 16, 16, DataType::f32(), DataType::f32());
    hwsim::CpuDevice cpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier("C", /*gpu=*/false);
    ScopedEnv off("TENSORIR_ISOLATE", "off");
    failpoint::ScopedFailpoints quiet("");
    meta::TuneResult result =
        meta::evolutionarySearch(op.func, sketch, cpu, options(91));
    EXPECT_GT(result.trials_measured, 0);
    EXPECT_EQ(result.crash_filtered, 0);
    EXPECT_EQ(result.hang_filtered, 0);
    EXPECT_EQ(result.trials_measured,
              result.measured_valid + result.measured_invalid);
}

TEST_F(RunnerSearchTest, IsolationDisabledByEnvLeavesRunnerUnbuilt)
{
    PrimFunc func = testutil::matmul(8, 8, 8);
    {
        ScopedEnv off("TENSORIR_ISOLATE", "off");
        auto backend = meta::makeMeasureBackend(
            "jit", func, meta::MeasureConfig{});
        auto* jit = dynamic_cast<meta::JitMeasurer*>(backend.get());
        ASSERT_NE(jit, nullptr);
        EXPECT_FALSE(jit->isolationActive());
    }
    if (meta::MeasureRunner::available()) {
        auto backend = meta::makeMeasureBackend(
            "jit", func, meta::MeasureConfig{});
        auto* jit = dynamic_cast<meta::JitMeasurer*>(backend.get());
        ASSERT_NE(jit, nullptr);
        EXPECT_TRUE(jit->isolationActive());
    }
}

// --- journaled resume with crash classifications -----------------------

TEST_F(RunnerSearchTest, CrashClassificationsReplayByteIdentical)
{
    if (!meta::MeasureRunner::available() || !runtime::jitAvailable()) {
        GTEST_SKIP() << "needs fork isolation and a native toolchain";
    }
    workloads::OpSpec op =
        workloads::gmm(16, 16, 16, DataType::f32(), DataType::f32());
    hwsim::CpuDevice cpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier("C", /*gpu=*/false);
    const std::string journal =
        ::testing::TempDir() + "tensorir_runner_crash_journal.txt";
    meta::resetJournal(journal);

    meta::TuneOptions opts = options(91);
    opts.journal_path = journal;
    opts.journal_label = "runner_crash";

    // Roughly half the candidates crash their worker (data-keyed, so
    // the *same* candidates crash in every run and on every resume).
    const std::string chaos_spec = "seed=11; runner.crash=error(0.5)";

    // Kill the search at the third checkpoint write: generation 1's
    // results — including its crash classifications — are lost and
    // must be re-derived on resume.
    {
        failpoint::ScopedFailpoints chaos(
            chaos_spec + "; search.checkpoint=throw@2");
        EXPECT_THROW(
            meta::evolutionarySearch(op.func, sketch, cpu, opts),
            failpoint::InjectedFault);
    }

    meta::TuneOptions resume_opts = opts;
    resume_opts.resume = true;
    failpoint::ScopedFailpoints chaos(chaos_spec);
    meta::TuneResult resumed =
        meta::evolutionarySearch(op.func, sketch, cpu, resume_opts);
    EXPECT_EQ(resumed.generations_replayed, 2);
    EXPECT_GT(resumed.crash_filtered, 0);
    EXPECT_EQ(resumed.trials_measured,
              resumed.measured_valid + resumed.measured_invalid);

    // A second resume replays the now-complete journal without
    // re-measuring (or re-crashing) anything, and must reproduce the
    // crashed-and-resumed run byte for byte — including the crash
    // accounting, which only the journal can supply.
    meta::TuneResult replayed =
        meta::evolutionarySearch(op.func, sketch, cpu, resume_opts);
    EXPECT_EQ(replayed.generations_replayed, opts.generations + 1);
    EXPECT_EQ(replayed.crash_filtered, resumed.crash_filtered);
    EXPECT_EQ(replayed.hang_filtered, resumed.hang_filtered);
    EXPECT_EQ(replayed.best_latency_us, resumed.best_latency_us);
    EXPECT_EQ(replayed.history, resumed.history);
    EXPECT_EQ(replayed.trials_measured, resumed.trials_measured);
    EXPECT_EQ(replayed.measured_valid, resumed.measured_valid);
    EXPECT_EQ(replayed.measured_invalid, resumed.measured_invalid);
    EXPECT_EQ(replayed.tuning_cost_us, resumed.tuning_cost_us);
    EXPECT_EQ(replayed.memo_hits, resumed.memo_hits);
    EXPECT_EQ(replayed.memo_measure_hits, resumed.memo_measure_hits);
    if (std::isfinite(resumed.best_latency_us)) {
        EXPECT_EQ(funcToString(replayed.best_func),
                  funcToString(resumed.best_func));
    }
}

} // namespace
} // namespace tir
