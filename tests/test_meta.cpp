/**
 * @file
 * Auto-scheduler tests (§4): tensorization candidate generation with
 * characteristic vectors, ReIndex + layout application, sketch
 * generation, the evolutionary search, and the end-to-end autoTune on
 * every workload of the small suite (parameterized, numerically
 * verified against the unscheduled reference).
 */
#include <gtest/gtest.h>

#include "meta/search.h"
#include "runtime/interpreter.h"
#include "workloads/workloads.h"

#include "test_util.h"

namespace tir {
namespace {

TEST(CandidateTest, GmmMatchesWmma)
{
    workloads::OpSpec op = workloads::gmm(64, 64, 64);
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "C", {"wmma_16x16x16_f16"});
    ASSERT_EQ(candidates.size(), 1u);
    const meta::TensorizeCandidate& cand = candidates[0];
    EXPECT_FALSE(cand.has_batch);
    ASSERT_EQ(cand.groups.size(), 3u); // x, y, k
    EXPECT_EQ(cand.padded[0], 64);
    EXPECT_EQ(cand.padding_waste, 1.0);
}

TEST(CandidateTest, BatchMatmulHasBatchGroup)
{
    workloads::OpSpec op = workloads::batchMatmul(4, 32, 32, 32);
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "C", {"wmma_16x16x16_f16"});
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_TRUE(candidates[0].has_batch);
    ASSERT_EQ(candidates[0].groups.size(), 4u);
    EXPECT_EQ(candidates[0].padded[0], 4); // batch unpadded
}

TEST(CandidateTest, Conv2dGroupsFollowCharacteristicVectors)
{
    // The Figure 9 walk-through: x = (n, h, w), y = co, k = (rh, rw, rc).
    workloads::OpSpec op = workloads::conv2d(2, 8, 8, 16, 32, 3, 1, 1);
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "C", {"wmma_16x16x16_f16"});
    ASSERT_EQ(candidates.size(), 1u);
    const meta::TensorizeCandidate& cand = candidates[0];
    EXPECT_FALSE(cand.has_batch);
    ASSERT_EQ(cand.groups.size(), 3u);
    EXPECT_EQ(cand.groups[0].size(), 3u); // n, h, w
    EXPECT_EQ(cand.groups[1].size(), 1u); // co
    EXPECT_EQ(cand.groups[2].size(), 3u); // rh, rw, rc
    // x extent: 2*8*8 = 128 (divisible by 16); k: 3*3*16 = 144.
    EXPECT_EQ(cand.padded[0], 128);
    EXPECT_EQ(cand.padded[2], 144);
}

TEST(CandidateTest, PaddingWasteComputed)
{
    // 10x10x10 against 16x16x16 tiles: heavy padding.
    workloads::OpSpec op = workloads::gmm(10, 10, 10);
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "C", {"wmma_16x16x16_f16"});
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_NEAR(candidates[0].padding_waste,
                (16.0 * 16 * 16) / (10.0 * 10 * 10), 1e-9);
}

TEST(CandidateTest, DepthwiseHasNoCandidate)
{
    // DEP has no y-class iterator (channel joins all operands): the
    // pipeline must fall back to non-tensorized sketches.
    workloads::OpSpec op = workloads::depthwiseConv2d(1, 8, 8, 16, 3, 1,
                                                      1);
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "C", {"wmma_16x16x16_f16"});
    EXPECT_TRUE(candidates.empty());
}

TEST(CandidateTest, DtypeMismatchRejected)
{
    workloads::OpSpec op = workloads::gmm(64, 64, 64, DataType::f32(),
                                          DataType::f32());
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "C", {"wmma_16x16x16_f16"});
    EXPECT_TRUE(candidates.empty());
}

TEST(CandidateTest, ElementwiseBlockRejected)
{
    workloads::OpSpec op = workloads::matmulRelu(16, 16, 16);
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "D", {"accel_dot_4x4x4"});
    EXPECT_TRUE(candidates.empty());
}

TEST(ReindexTest, GmmIdentityIsLayoutFree)
{
    workloads::OpSpec op = workloads::gmm(64, 64, 64);
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "C", {"wmma_16x16x16_f16"});
    Schedule sch(op.func, 1);
    meta::ReindexBlocks rb =
        meta::applyReindexAndLayout(sch, candidates[0]);
    // GMM layouts already match: all three stages are marked free.
    for (const std::string& copy :
         {rb.a_copy, rb.b_copy, rb.c_writeback}) {
        BlockPtr block = sch.getBlock(copy);
        EXPECT_TRUE(block->annotations.count("layout_free"))
            << copy << " should be an identity reshape";
    }
}

TEST(ReindexTest, ConvImageGatherIsNotFree)
{
    workloads::OpSpec op = workloads::conv2d(1, 8, 8, 16, 16, 3, 1, 1);
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "C", {"wmma_16x16x16_f16"});
    Schedule sch(op.func, 1);
    meta::ReindexBlocks rb =
        meta::applyReindexAndLayout(sch, candidates[0]);
    // The im2col gather of the padded image must be materialized.
    BlockPtr a_block = sch.getBlock(rb.a_copy);
    EXPECT_FALSE(a_block->annotations.count("layout_free"));
    // The weight reshape ([rh,rw,ci,co] -> [k,y]) is contiguous: free.
    BlockPtr b_block = sch.getBlock(rb.b_copy);
    EXPECT_TRUE(b_block->annotations.count("layout_free"));
}

TEST(ReindexTest, PreservesSemantics)
{
    workloads::OpSpec op = workloads::conv2d(
        1, 6, 6, 8, 16, 3, 1, 1, 1, DataType::f16(), DataType::f16());
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "C", {"wmma_16x16x16_f16"});
    ASSERT_FALSE(candidates.empty());
    Schedule sch(op.func, 1);
    meta::applyReindexAndLayout(sch, candidates[0]);
    sch.validateAffineBindings();
    testutil::expectSameResults(sch.func(), op.func, 1, 1e-6);
}

TEST(FeatureTest, VectorShapeAndSensitivity)
{
    PrimFunc func = testutil::matmul(32, 32, 32);
    meta::FeatureVec features = meta::extractFeatures(func);
    EXPECT_EQ(features.size(), 17u);
    // Scheduling changes features.
    Schedule sch(func);
    std::vector<Var> loops = sch.getLoops("C");
    sch.bind(loops[0], "blockIdx.x");
    sch.bind(loops[1], "threadIdx.x");
    meta::FeatureVec after = meta::extractFeatures(sch.func());
    EXPECT_NE(features, after);
    EXPECT_EQ(after.back(), 1.0); // uses_gpu_threads flag
}

TEST(SearchTest, FindsValidScheduleAndImproves)
{
    workloads::OpSpec op = workloads::gmm(256, 256, 256);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneOptions options;
    options.population = 8;
    options.generations = 4;
    options.seed = 5;
    meta::TuneResult result =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR);
    ASSERT_TRUE(result.best_func);
    EXPECT_TRUE(std::isfinite(result.best_latency_us));
    EXPECT_GT(result.trials_measured, 0);
    // The running best never regresses across generations.
    for (size_t g = 1; g < result.history.size(); ++g) {
        EXPECT_LE(result.history[g], result.history[g - 1]);
    }
}

TEST(SearchTest, DeterministicForFixedSeed)
{
    workloads::OpSpec op = workloads::gmm(128, 128, 128);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneOptions options;
    options.population = 6;
    options.generations = 2;
    options.seed = 77;
    meta::TuneResult a =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR);
    meta::TuneResult b =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR);
    EXPECT_DOUBLE_EQ(a.best_latency_us, b.best_latency_us);
    EXPECT_EQ(a.trials_measured, b.trials_measured);
}

TEST(SearchTest, TuningCostAccumulates)
{
    workloads::OpSpec op = workloads::gmm(128, 128, 128);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneOptions options;
    options.population = 4;
    options.generations = 1;
    options.measure_overhead_us = 1000;
    meta::TuneResult result =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR);
    EXPECT_GE(result.tuning_cost_us,
              result.trials_measured * options.measure_overhead_us);
}

TEST(SearchTest, AmosStyleIsNeverFasterThanFullSystem)
{
    workloads::OpSpec op = workloads::gmm(512, 512, 512);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneOptions options;
    options.population = 8;
    options.generations = 3;
    meta::TuneResult amos =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kAmosLike);
    meta::TuneResult full =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR);
    EXPECT_LE(full.best_latency_us, amos.best_latency_us * 1.05);
}

/** Parameterized end-to-end correctness: autoTune every small-suite op
 *  on the GPU persona and compare against the reference numerically. */
class AutoTuneNumericTest : public ::testing::TestWithParam<int>
{};

TEST_P(AutoTuneNumericTest, TunedProgramMatchesReference)
{
    workloads::OpSpec op =
        workloads::gpuSuiteSmall()[static_cast<size_t>(GetParam())];
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, op.einsum_block, "gpu",
                        {"wmma_16x16x16_f16"}};
    meta::TuneOptions options;
    options.population = 4;
    options.generations = 1;
    options.children_per_generation = 6;
    options.measured_per_generation = 3;
    options.seed = 1000 + GetParam();
    meta::TuneResult result =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR);
    ASSERT_TRUE(result.best_func);
    testutil::expectSameResults(result.best_func, op.func, 1, 1e-6,
                                2000 + GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllSmallOps, AutoTuneNumericTest,
                         ::testing::Range(0, 8));

/** Same sweep for the CPU persona with the sdot intrinsics. */
class AutoTuneCpuNumericTest : public ::testing::TestWithParam<int>
{};

TEST_P(AutoTuneCpuNumericTest, TunedProgramMatchesReference)
{
    int index = GetParam();
    workloads::OpSpec op =
        index == 0
            ? workloads::gmm(48, 48, 32, DataType::i8(), DataType::i32())
            : workloads::conv2d(1, 6, 6, 8, 8, 3, 1, 1, 1,
                                DataType::i8(), DataType::i32());
    hwsim::CpuDevice cpu;
    meta::TuneTask task{op.func, op.einsum_block, "cpu",
                        {"arm_sdot_1x1x4", "arm_gemm_8x12x4"}};
    meta::TuneOptions options;
    options.population = 4;
    options.generations = 1;
    options.seed = 3000 + index;
    meta::TuneResult result =
        meta::autoTune(task, cpu, options, meta::TunerStyle::kTensorIR);
    ASSERT_TRUE(result.best_func);
    testutil::expectSameResults(result.best_func, op.func, 1, 0.0,
                                4000 + index);
}

INSTANTIATE_TEST_SUITE_P(ArmOps, AutoTuneCpuNumericTest,
                         ::testing::Range(0, 2));

} // namespace
} // namespace tir
