/**
 * @file
 * Property-style parameterized sweeps over schedule primitives: every
 * sampled transformation sequence must preserve program semantics
 * (checked numerically) and pass the §3.3 validators. These are the
 * equivalence guarantees the paper's primitive-correctness checks make.
 */
#include <gtest/gtest.h>

#include "intrin/tensor_intrin.h"
#include "runtime/jit.h"
#include "support/failpoint.h"
#include "tir/schedule.h"
#include "tir/verify.h"
#include "workloads/workloads.h"

#include "test_util.h"

namespace tir {
namespace {

using testutil::expectSameResults;
using testutil::matmul;

/** Split factor sweeps: every perfect and imperfect split is safe. */
class SplitPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(SplitPropertyTest, SplitPreservesSemantics)
{
    auto [extent, f1, f2] = GetParam();
    PrimFunc original = matmul(extent, 8, 8);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    sch.split(loops[0], {-1, f1, f2});
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

INSTANTIATE_TEST_SUITE_P(
    FactorSweep, SplitPropertyTest,
    ::testing::Values(std::make_tuple(16, 2, 2),
                      std::make_tuple(16, 4, 2),
                      std::make_tuple(16, 1, 16),
                      std::make_tuple(12, 3, 2),
                      std::make_tuple(10, 3, 2), // imperfect (12 > 10)
                      std::make_tuple(7, 2, 2),  // imperfect (8 > 7)
                      std::make_tuple(24, 6, 4),
                      std::make_tuple(9, 9, 1)));

/** Reorder permutation sweeps over a 3-deep nest. */
class ReorderPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(ReorderPropertyTest, AnyPermutationIsSafe)
{
    int perm = GetParam();
    PrimFunc original = matmul(6, 10, 14);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<int> order = {0, 1, 2};
    for (int i = 0; i < perm; ++i) {
        std::next_permutation(order.begin(), order.end());
    }
    sch.reorder({loops[static_cast<size_t>(order[0])],
                 loops[static_cast<size_t>(order[1])],
                 loops[static_cast<size_t>(order[2])]});
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

INSTANTIATE_TEST_SUITE_P(AllPermutations, ReorderPropertyTest,
                         ::testing::Range(0, 6));

/** Fuse-split round trips with varied refactorizations. */
class FuseSplitPropertyTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(FuseSplitPropertyTest, RefactorizationIsSafe)
{
    auto [outer, inner] = GetParam();
    PrimFunc original = matmul(8, 8, 8);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    Var fused = sch.fuse({loops[0], loops[1]});
    sch.split(fused, {outer, inner});
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

INSTANTIATE_TEST_SUITE_P(
    Refactor, FuseSplitPropertyTest,
    ::testing::Values(std::make_pair(2, 32), std::make_pair(4, 16),
                      std::make_pair(8, 8), std::make_pair(16, 4),
                      std::make_pair(32, 2), std::make_pair(64, 1)));

/** Tensorize across intrinsic tile sizes (with matching workloads). */
class TensorizePropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(TensorizePropertyTest, DifferentTileSizes)
{
    registerBuiltinIntrinsics();
    int64_t tile = GetParam();
    std::string name = "prop_mma_" + std::to_string(tile);
    if (!TensorIntrin::exists(name)) {
        TensorIntrin intrin = makeMatmulIntrin(
            name, tile, tile, tile, DataType::f32(), DataType::f32(),
            "any", "any", "any", "prop.mma_" + std::to_string(tile),
            "dot4", "thread");
        TensorIntrin::registerIntrin(intrin);
        int64_t t = tile;
        runtime::Interpreter::registerIntrinsic(
            "prop.mma_" + std::to_string(tile),
            [t](runtime::ExecContext& interp, const CallNode& call) {
                runtime::BufferRef c = interp.resolvePtr(call.args[0]);
                runtime::BufferRef a = interp.resolvePtr(call.args[1]);
                runtime::BufferRef b = interp.resolvePtr(call.args[2]);
                int64_t sc = c.buffer->shapeInt(c.buffer->ndim() - 1);
                int64_t sa = a.buffer->shapeInt(a.buffer->ndim() - 1);
                int64_t sb = b.buffer->shapeInt(b.buffer->ndim() - 1);
                for (int64_t i = 0; i < t; ++i) {
                    for (int64_t j = 0; j < t; ++j) {
                        for (int64_t k = 0; k < t; ++k) {
                            c.array->at(c.offset + i * sc + j) +=
                                a.array->at(a.offset + i * sa + k) *
                                b.array->at(b.offset + k * sb + j);
                        }
                    }
                }
            });
    }
    PrimFunc original = matmul(32, 32, 32);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(loops[0], {-1, tile});
    std::vector<Var> j_split = sch.split(loops[1], {-1, tile});
    std::vector<Var> k_split = sch.split(loops[2], {-1, tile});
    sch.reorder({i_split[0], j_split[0], k_split[0], i_split[1],
                 j_split[1], k_split[1]});
    sch.decomposeReduction("C", k_split[0]);
    std::string outer = sch.blockize(i_split[1]);
    sch.tensorize(outer, name);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

INSTANTIATE_TEST_SUITE_P(TileSizes, TensorizePropertyTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

/** Sampled random schedules: whatever the sampler picks must be valid
 *  or rejected — never silently wrong. */
class RandomScheduleTest : public ::testing::TestWithParam<int>
{};

TEST_P(RandomScheduleTest, SampledTilingsStaySound)
{
    PrimFunc original = matmul(24, 24, 24);
    Schedule sch(original, /*seed=*/static_cast<uint64_t>(GetParam()));
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<int64_t> ti = sch.samplePerfectTile(loops[0], 3, 8);
    std::vector<Var> i_split = sch.split(loops[0], ti);
    std::vector<int64_t> tj = sch.samplePerfectTile(loops[1], 2, 8);
    std::vector<Var> j_split = sch.split(loops[1], tj);
    sch.reorder({i_split[0], j_split[0], i_split[1], j_split[1],
                 i_split[2]});
    sch.validateAffineBindings();
    EXPECT_TRUE(verifyRegionCover(sch.func()).ok);
    expectSameResults(sch.func(), original);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScheduleTest,
                         ::testing::Range(1, 13));

/** Differential engine property: randomly scheduled Table 1 workloads
 *  must behave identically on the bytecode VM and the tree-walking
 *  oracle — outputs bit for bit, same fuel-exhaustion point with the
 *  same partial state, and the same failpoint firing. */
class VmDifferentialTest : public ::testing::TestWithParam<int>
{};

std::vector<runtime::NDArray>
diffInputs(const PrimFunc& func, uint64_t seed)
{
    Rng rng(seed);
    std::vector<runtime::NDArray> arrays;
    for (const Buffer& param : func->params) {
        std::vector<int64_t> shape;
        for (size_t d = 0; d < param->ndim(); ++d) {
            shape.push_back(param->shapeInt(d));
        }
        runtime::NDArray array(param->dtype, shape);
        if (param->dtype.isInt()) {
            array.fillRandom(rng, -4, 4);
        } else {
            array.fillRandom(rng);
        }
        arrays.push_back(std::move(array));
    }
    return arrays;
}

std::vector<runtime::NDArray*>
diffPtrs(std::vector<runtime::NDArray>& arrays)
{
    std::vector<runtime::NDArray*> out;
    for (runtime::NDArray& a : arrays) out.push_back(&a);
    return out;
}

/** Tile every loop of the einsum block with sampled perfect factors. */
PrimFunc
randomSchedule(const workloads::OpSpec& spec, uint64_t seed)
{
    Schedule sch(spec.func, seed);
    std::vector<Var> loops = sch.getLoops(spec.einsum_block);
    for (const Var& loop : loops) {
        sch.split(loop, sch.samplePerfectTile(loop, 2, 4));
    }
    sch.validateAffineBindings();
    return sch.func();
}

TEST_P(VmDifferentialTest, ScheduledWorkloadsMatchOracleBitExact)
{
    uint64_t seed = static_cast<uint64_t>(GetParam());
    for (const workloads::OpSpec& spec : workloads::gpuSuiteSmall()) {
        PrimFunc func = randomSchedule(spec, seed);
        std::vector<runtime::NDArray> vm_args = diffInputs(func, seed);
        std::vector<runtime::NDArray> tw_args = diffInputs(func, seed);
        std::vector<runtime::NDArray*> vm_ptrs = diffPtrs(vm_args);
        std::vector<runtime::NDArray*> tw_ptrs = diffPtrs(tw_args);
        runtime::VirtualMachine vm;
        vm.run(runtime::compile(func), vm_ptrs);
        runtime::Interpreter interp;
        interp.run(func, tw_ptrs);
        for (size_t i = 0; i < vm_args.size(); ++i) {
            EXPECT_EQ(vm_args[i].maxAbsDiff(tw_args[i]), 0.0)
                << spec.name << " argument " << i
                << " differs between VM and tree-walker";
        }
    }
}

TEST_P(VmDifferentialTest, FuelExhaustionMatchesOracle)
{
    // Both engines must run out of fuel at the same statement, report
    // the same message, and leave identical partial results behind.
    uint64_t seed = static_cast<uint64_t>(GetParam());
    for (const workloads::OpSpec& spec : workloads::gpuSuiteSmall()) {
        PrimFunc func = randomSchedule(spec, seed);
        for (uint64_t limit : {uint64_t{41}, uint64_t{977}}) {
            std::vector<runtime::NDArray> tw_args =
                diffInputs(func, seed);
            std::vector<runtime::NDArray*> tw_ptrs = diffPtrs(tw_args);
            bool tw_threw = false;
            std::string tw_what;
            runtime::Interpreter interp;
            interp.setStepLimit(limit);
            try {
                interp.run(func, tw_ptrs);
            } catch (const runtime::EvalError& e) {
                tw_threw = true;
                tw_what = e.what();
            }

            std::vector<runtime::NDArray> vm_args =
                diffInputs(func, seed);
            std::vector<runtime::NDArray*> vm_ptrs = diffPtrs(vm_args);
            bool vm_threw = false;
            std::string vm_what;
            runtime::VirtualMachine vm;
            vm.setStepLimit(limit);
            try {
                vm.run(runtime::compile(func), vm_ptrs);
            } catch (const runtime::EvalError& e) {
                vm_threw = true;
                vm_what = e.what();
            }

            EXPECT_EQ(tw_threw, vm_threw)
                << spec.name << " fuel divergence at limit " << limit;
            EXPECT_EQ(tw_what, vm_what);
            for (size_t i = 0; i < vm_args.size(); ++i) {
                EXPECT_EQ(vm_args[i].maxAbsDiff(tw_args[i]), 0.0)
                    << spec.name << " partial state of argument " << i
                    << " differs at limit " << limit;
            }
        }
    }
}

TEST_P(VmDifferentialTest, FailpointFiresIdentically)
{
    uint64_t seed = static_cast<uint64_t>(GetParam());
    failpoint::ScopedFailpoints guard("seed=9; interp.run=error(1)");
    for (const workloads::OpSpec& spec : workloads::gpuSuiteSmall()) {
        PrimFunc func = randomSchedule(spec, seed);
        std::vector<runtime::NDArray> args = diffInputs(func, seed);
        std::vector<runtime::NDArray*> arg_ptrs = diffPtrs(args);
        std::string tw_what;
        try {
            runtime::Interpreter interp;
            interp.run(func, arg_ptrs);
            FAIL() << spec.name << ": tree-walker missed the failpoint";
        } catch (const runtime::EvalError& e) {
            tw_what = e.what();
        }
        try {
            runtime::VirtualMachine vm;
            vm.run(runtime::compile(func), arg_ptrs);
            FAIL() << spec.name << ": VM missed the failpoint";
        } catch (const runtime::EvalError& e) {
            EXPECT_EQ(tw_what, e.what()) << spec.name;
        }
    }
}

TEST_P(VmDifferentialTest, ThreeWayParityAcrossEngines)
{
    // The native JIT tier must agree with both sequential engines on
    // randomly scheduled Table 1 workloads. The C emitter performs
    // exactly the interpreter's double arithmetic and the object is
    // built with -ffp-contract=off, so on one machine and libm the
    // comparison holds bit for bit (docs/EXECUTION.md documents when
    // it would not); a missing toolchain skips rather than fails.
    if (!runtime::jitAvailable()) {
        GTEST_SKIP() << "no working C compiler for the JIT tier";
    }
    uint64_t seed = static_cast<uint64_t>(GetParam());
    for (const workloads::OpSpec& spec : workloads::gpuSuiteSmall()) {
        PrimFunc func = randomSchedule(spec, seed);
        std::shared_ptr<const runtime::JitModule> mod =
            runtime::jitCompile(func);
        ASSERT_NE(mod, nullptr)
            << spec.name << ": JIT compilation failed";
        std::vector<runtime::NDArray> jit_args = diffInputs(func, seed);
        std::vector<runtime::NDArray> vm_args = diffInputs(func, seed);
        std::vector<runtime::NDArray> tw_args = diffInputs(func, seed);
        std::vector<runtime::NDArray*> jit_ptrs = diffPtrs(jit_args);
        std::vector<runtime::NDArray*> vm_ptrs = diffPtrs(vm_args);
        std::vector<runtime::NDArray*> tw_ptrs = diffPtrs(tw_args);
        mod->run(jit_ptrs);
        runtime::VirtualMachine vm;
        vm.run(runtime::compile(func), vm_ptrs);
        runtime::Interpreter interp;
        interp.run(func, tw_ptrs);
        for (size_t i = 0; i < jit_args.size(); ++i) {
            EXPECT_EQ(jit_args[i].maxAbsDiff(tw_args[i]), 0.0)
                << spec.name << " argument " << i
                << " differs between JIT and tree-walker";
            EXPECT_EQ(jit_args[i].maxAbsDiff(vm_args[i]), 0.0)
                << spec.name << " argument " << i
                << " differs between JIT and VM";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmDifferentialTest,
                         ::testing::Range(1, 4));

/** compute_at at every loop depth of the consumer. */
class ComputeAtDepthTest : public ::testing::TestWithParam<int>
{};

TEST_P(ComputeAtDepthTest, EveryDepthIsSafe)
{
    int depth = GetParam();
    PrimFunc original = testutil::matmulRelu(16, 16, 8);
    Schedule sch(original);
    std::vector<Var> d_loops = sch.getLoops("D");
    sch.computeAt("C", d_loops[static_cast<size_t>(depth)]);
    sch.validateAffineBindings();
    EXPECT_TRUE(verifyRegionCover(sch.func()).ok);
    expectSameResults(sch.func(), original);
}

INSTANTIATE_TEST_SUITE_P(Depths, ComputeAtDepthTest,
                         ::testing::Range(0, 2));

} // namespace
} // namespace tir
