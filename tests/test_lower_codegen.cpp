/**
 * @file
 * Lowering and C-backend tests: the block-eraser must preserve
 * semantics at every schedule stage (checked via the interpreter), and
 * the generated C must compile with the system compiler and print the
 * same checksum the interpreter computes.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/c_codegen.h"
#include "ir/transform.h"
#include "intrin/tensor_intrin.h"
#include "lower/lower.h"
#include "runtime/interpreter.h"
#include "tir/schedule.h"

#include "test_util.h"

namespace tir {
namespace {

using testutil::expectSameResults;
using testutil::matmul;

TEST(LowerTest, RemovesAllBlocks)
{
    PrimFunc func = matmul(8, 8, 8);
    EXPECT_FALSE(isBlockFree(func->body));
    PrimFunc lowered = lowerToLoops(func);
    EXPECT_TRUE(isBlockFree(lowered->body));
}

TEST(LowerTest, PreservesSemanticsUnscheduled)
{
    PrimFunc func = matmul(6, 7, 8);
    expectSameResults(lowerToLoops(func), func);
}

TEST(LowerTest, PreservesSemanticsAfterScheduling)
{
    PrimFunc original = matmul(16, 16, 16);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(loops[0], {-1, 4});
    sch.reorder({i_split[1], loops[2]});
    sch.decomposeReduction("C", loops[2]);
    PrimFunc lowered = lowerToLoops(sch.func());
    EXPECT_TRUE(isBlockFree(lowered->body));
    expectSameResults(lowered, original);
}

TEST(LowerTest, PreservesSemanticsAfterTensorize)
{
    registerBuiltinIntrinsics();
    PrimFunc original = matmul(16, 16, 16);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(loops[0], {-1, 4});
    std::vector<Var> j_split = sch.split(loops[1], {-1, 4});
    std::vector<Var> k_split = sch.split(loops[2], {-1, 4});
    sch.reorder({i_split[0], j_split[0], k_split[0], i_split[1],
                 j_split[1], k_split[1]});
    sch.decomposeReduction("C", k_split[0]);
    std::string outer = sch.blockize(i_split[1]);
    sch.tensorize(outer, "accel_dot_4x4x4");
    PrimFunc lowered = lowerToLoops(sch.func());
    EXPECT_TRUE(isBlockFree(lowered->body));
    expectSameResults(lowered, original);
}

TEST(LowerTest, ImperfectSplitPredicateBecomesIf)
{
    PrimFunc original = matmul(10, 8, 8);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    sch.split(loops[0], {3, 4}); // 12 > 10
    PrimFunc lowered = lowerToLoops(sch.func());
    EXPECT_TRUE(isBlockFree(lowered->body));
    expectSameResults(lowered, original);
    bool has_if = false;
    preOrderVisit(lowered->body, [&](const StmtNode* node) {
        has_if |= (node->kind == StmtKind::kIfThenElse);
    });
    EXPECT_TRUE(has_if);
}

TEST(CodegenTest, EmitsCompilableLookingC)
{
    PrimFunc func = matmul(8, 8, 8);
    std::string code = codegen::emitC(func);
    EXPECT_NE(code.find("void matmul(float* restrict A"),
              std::string::npos);
    EXPECT_NE(code.find("for (int64_t"), std::string::npos);
    EXPECT_NE(code.find("tir_floordiv"), std::string::npos);
}

TEST(CodegenTest, EmitsMmaHelperForIntrinsics)
{
    registerBuiltinIntrinsics();
    PrimFunc original = matmul(16, 16, 16);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(loops[0], {-1, 4});
    std::vector<Var> j_split = sch.split(loops[1], {-1, 4});
    std::vector<Var> k_split = sch.split(loops[2], {-1, 4});
    sch.reorder({i_split[0], j_split[0], k_split[0], i_split[1],
                 j_split[1], k_split[1]});
    sch.decomposeReduction("C", k_split[0]);
    sch.tensorize(sch.blockize(i_split[1]), "accel_dot_4x4x4");
    std::string code = codegen::emitC(sch.func());
    EXPECT_NE(code.find("tir_mma_4x4x4_float_float"),
              std::string::npos);
}

TEST(CodegenTest, RejectsGpuFunctions)
{
    PrimFunc func = matmul(8, 8, 8);
    Schedule sch(func);
    std::vector<Var> loops = sch.getLoops("C");
    sch.bind(loops[0], "threadIdx.x");
    EXPECT_THROW(codegen::emitC(sch.func()), FatalError);
}

TEST(CodegenTest, CompiledProgramMatchesInterpreter)
{
    // Full pipeline proof: schedule, lower, emit C, compile with the
    // system compiler, run, and compare checksums with the interpreter.
    registerBuiltinIntrinsics();
    PrimFunc original = matmul(8, 8, 8);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(loops[0], {-1, 4});
    std::vector<Var> j_split = sch.split(loops[1], {-1, 4});
    std::vector<Var> k_split = sch.split(loops[2], {-1, 4});
    sch.reorder({i_split[0], j_split[0], k_split[0], i_split[1],
                 j_split[1], k_split[1]});
    sch.decomposeReduction("C", k_split[0]);
    sch.tensorize(sch.blockize(i_split[1]), "accel_dot_4x4x4");

    std::string code = codegen::emitStandaloneC(sch.func(), 1);
    std::string dir = ::testing::TempDir();
    std::string src = dir + "/tensorir_codegen_test.c";
    std::string bin = dir + "/tensorir_codegen_test.bin";
    {
        std::ofstream out(src);
        out << code;
    }
    std::string compile = "cc -O1 -o " + bin + " " + src + " -lm";
    ASSERT_EQ(std::system(compile.c_str()), 0) << code;
    FILE* pipe = popen(bin.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    double compiled_sum = 0;
    ASSERT_EQ(fscanf(pipe, "%lf", &compiled_sum), 1);
    pclose(pipe);

    // Reproduce the standalone program's deterministic inputs in the
    // interpreter.
    std::vector<runtime::NDArray> args;
    for (const Buffer& p : original->params) {
        std::vector<int64_t> shape;
        for (size_t d = 0; d < p->ndim(); ++d) {
            shape.push_back(p->shapeInt(d));
        }
        runtime::NDArray array(p->dtype, shape);
        args.push_back(std::move(array));
    }
    for (size_t i = 0; i + 1 < args.size(); ++i) {
        for (int64_t e = 0; e < args[i].numel(); ++e) {
            args[i].at(e) = static_cast<double>((e % 7) - 3);
        }
    }
    std::vector<runtime::NDArray*> ptrs;
    for (auto& a : args) ptrs.push_back(&a);
    runtime::Interpreter interp;
    interp.run(original, ptrs);
    double expect = 0;
    for (int64_t e = 0; e < args.back().numel(); ++e) {
        expect += args.back().at(e);
    }
    EXPECT_NEAR(compiled_sum, expect, 1e-3);
}

} // namespace
} // namespace tir
