/**
 * @file
 * Cost-model tests: the gradient-boosted tree ensemble must fit simple
 * functions, generalize to nearby points, outperform the constant-mean
 * predictor, and behave deterministically.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "meta/gbdt.h"
#include "support/rng.h"

namespace tir {
namespace meta {
namespace {

TEST(GbdtTest, UntrainedPredictsZero)
{
    Gbdt model;
    EXPECT_FALSE(model.trained());
    EXPECT_DOUBLE_EQ(model.predict({1, 2, 3}), 0.0);
}

TEST(GbdtTest, TooFewSamplesStaysUntrained)
{
    Gbdt model;
    model.fit({{1}, {2}}, {1, 2});
    EXPECT_FALSE(model.trained());
}

TEST(GbdtTest, FitsStepFunction)
{
    std::vector<FeatureVec> x;
    std::vector<double> y;
    for (int i = 0; i < 40; ++i) {
        double v = i / 40.0;
        x.push_back({v});
        y.push_back(v < 0.5 ? 1.0 : 5.0);
    }
    Gbdt model;
    model.fit(x, y);
    ASSERT_TRUE(model.trained());
    EXPECT_NEAR(model.predict({0.2}), 1.0, 0.2);
    EXPECT_NEAR(model.predict({0.8}), 5.0, 0.2);
}

TEST(GbdtTest, FitsLinearFunctionBetterThanMean)
{
    Rng rng(5);
    std::vector<FeatureVec> x;
    std::vector<double> y;
    double mean = 0;
    for (int i = 0; i < 100; ++i) {
        double a = rng.randDouble();
        double b = rng.randDouble();
        x.push_back({a, b});
        y.push_back(3 * a - 2 * b);
        mean += y.back();
    }
    mean /= 100;
    Gbdt model;
    model.fit(x, y);
    double model_err = 0;
    double mean_err = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        model_err += std::pow(model.predict(x[i]) - y[i], 2);
        mean_err += std::pow(mean - y[i], 2);
    }
    EXPECT_LT(model_err, mean_err * 0.25);
}

TEST(GbdtTest, IgnoresIrrelevantFeatures)
{
    Rng rng(9);
    std::vector<FeatureVec> x;
    std::vector<double> y;
    for (int i = 0; i < 80; ++i) {
        double signal = rng.randDouble();
        double noise = rng.randDouble();
        x.push_back({noise, signal});
        y.push_back(signal > 0.5 ? 10.0 : 0.0);
    }
    Gbdt model;
    model.fit(x, y);
    // Prediction should track the signal feature, not the noise one.
    EXPECT_GT(model.predict({0.1, 0.9}), 5.0);
    EXPECT_LT(model.predict({0.9, 0.1}), 5.0);
}

TEST(GbdtTest, RankingIsUseful)
{
    // The search only needs ranking: lower-latency programs must be
    // predicted lower.
    Rng rng(11);
    std::vector<FeatureVec> x;
    std::vector<double> y;
    for (int i = 0; i < 60; ++i) {
        double f = rng.randDouble() * 10;
        x.push_back({f, f * f});
        y.push_back(f * 2 + 1);
    }
    Gbdt model;
    model.fit(x, y);
    int correct = 0;
    int total = 0;
    for (double a = 0.5; a < 9.5; a += 1.0) {
        for (double b = a + 1; b < 10; b += 1.0) {
            ++total;
            if (model.predict({a, a * a}) < model.predict({b, b * b})) {
                ++correct;
            }
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.85);
}

TEST(GbdtTest, DeterministicFits)
{
    std::vector<FeatureVec> x;
    std::vector<double> y;
    for (int i = 0; i < 30; ++i) {
        x.push_back({static_cast<double>(i % 7),
                     static_cast<double>(i % 3)});
        y.push_back(i % 5);
    }
    Gbdt a;
    Gbdt b;
    a.fit(x, y);
    b.fit(x, y);
    for (const FeatureVec& f : x) {
        EXPECT_DOUBLE_EQ(a.predict(f), b.predict(f));
    }
}

TEST(GbdtTest, RefitReplacesModel)
{
    std::vector<FeatureVec> x;
    std::vector<double> y_low;
    std::vector<double> y_high;
    for (int i = 0; i < 20; ++i) {
        x.push_back({static_cast<double>(i)});
        y_low.push_back(1.0);
        y_high.push_back(100.0);
    }
    Gbdt model;
    model.fit(x, y_low);
    EXPECT_NEAR(model.predict({5}), 1.0, 0.5);
    model.fit(x, y_high);
    EXPECT_NEAR(model.predict({5}), 100.0, 5.0);
}

/** Parameterized: depth/trees sweeps stay stable and trainable. */
class GbdtParamTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(GbdtParamTest, TrainsAcrossHyperparameters)
{
    auto [trees, depth] = GetParam();
    GbdtParams params;
    params.num_trees = trees;
    params.max_depth = depth;
    Gbdt model(params);
    std::vector<FeatureVec> x;
    std::vector<double> y;
    for (int i = 0; i < 50; ++i) {
        x.push_back({i * 0.1});
        y.push_back(i * 0.1 < 2.5 ? 0.0 : 1.0);
    }
    model.fit(x, y);
    ASSERT_TRUE(model.trained());
    EXPECT_LT(model.predict({0.5}), model.predict({4.5}));
}

INSTANTIATE_TEST_SUITE_P(
    Hyper, GbdtParamTest,
    ::testing::Values(std::make_pair(5, 1), std::make_pair(20, 2),
                      std::make_pair(50, 3), std::make_pair(100, 4)));

} // namespace
} // namespace meta
} // namespace tir
