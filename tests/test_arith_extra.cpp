/**
 * @file
 * Additional arithmetic-layer edge cases: stride (gcd) analysis behind
 * modular intervals, chain-aware division rules, symbolic floormod
 * windows in region analysis, and simplifier regressions found during
 * development.
 */
#include <gtest/gtest.h>

#include "arith/analyzer.h"
#include "arith/region.h"
#include "ir/printer.h"

namespace tir {
namespace arith {
namespace {

TEST(StrideTest, GcdOfAffineCoefficients)
{
    Analyzer an;
    Var x = var("x");
    Var y = var("y");
    EXPECT_EQ(an.stride(Expr(x) * 16, 512), 16);
    EXPECT_EQ(an.stride(Expr(x) * 12 + Expr(y) * 8, 32), 4);
    EXPECT_EQ(an.stride(Expr(x) * 16 + 8, 32), 8);
    EXPECT_EQ(an.stride(Expr(x), 32), 1);
    EXPECT_EQ(an.stride(Expr(x) * 32, 32), 32);
}

TEST(StrideTest, TightensModularIntervals)
{
    Analyzer an;
    Var x = var("x");
    an.bind(x, Range::fromExtent(1000));
    // floormod(x*16, 512) takes values {0, 16, ..., 496}.
    Interval m = an.evalInterval(floormod(Expr(x) * 16, 512));
    EXPECT_EQ(m.lo, 0);
    EXPECT_EQ(m.hi, 496);
    // Plain x reaches 511.
    Interval plain = an.evalInterval(floormod(Expr(x), 512));
    EXPECT_EQ(plain.hi, 511);
}

TEST(RegionWindowTest, AlignedModWindowStaysTight)
{
    // index = floormod(f*16 + v, 512) with v in [0,16): the window is
    // [floormod(f*16, 512), +16), one 16-wide slice — not 512 wide.
    Var f = var("f");
    Var v = var("v");
    RangeEnv env;
    env[v.get()] = Range::fromExtent(16);
    Analyzer an;
    an.bind(v, Range::fromExtent(16));
    SymBound bound = evalSymBound(floormod(Expr(f) * 16 + v, 512), env,
                                  an);
    ASSERT_TRUE(bound.lo);
    Expr width = an.simplify(bound.hi - bound.lo);
    EXPECT_EQ(constIntOr(width, -1), 15);
}

TEST(RegionWindowTest, MisalignedModWindowWidens)
{
    // With stride 1 the window can wrap: conservative full period.
    Var f = var("f");
    Var v = var("v");
    RangeEnv env;
    env[v.get()] = Range::fromExtent(16);
    Analyzer an;
    an.bind(v, Range::fromExtent(16));
    SymBound bound = evalSymBound(floormod(Expr(f) * 3 + v, 512), env,
                                  an);
    ASSERT_TRUE(bound.lo);
    EXPECT_EQ(constIntOr(bound.lo, -1), 0);
    EXPECT_EQ(constIntOr(bound.hi, -1), 511);
}

TEST(SimplifyExtraTest, QuotientExtractionOnlyWhenFullyResolved)
{
    // floordiv(a*512 + b*2 + c, 16) must stay intact: extracting a*32
    // would orphan the unresolved (b*2 + c) remainder and break the
    // binding validator's chain grammar.
    Analyzer an;
    Var a = var("a");
    Var b = var("b");
    Var c = var("c");
    an.bind(a, Range::fromExtent(5));
    an.bind(b, Range::fromExtent(256));
    an.bind(c, Range::fromExtent(2));
    Expr e = floordiv(Expr(c) + Expr(b) * 2 + Expr(a) * 512, 16);
    Expr simplified = an.simplify(e);
    EXPECT_EQ(simplified->kind, ExprKind::kFloorDiv);
    // But a fully resolvable remainder still extracts.
    Expr resolvable = floordiv(Expr(a) * 16 + c, 16);
    EXPECT_EQ(exprToString(an.simplify(resolvable)), "a");
}

TEST(SimplifyExtraTest, PointDomainVariablesFold)
{
    Analyzer an;
    Var unit = var("unit");
    an.bind(unit, Range::fromExtent(1));
    Var x = var("x");
    Expr e = an.simplify(Expr(x) * 4 + unit);
    EXPECT_EQ(exprToString(e), "(x * 4)");
}

TEST(SimplifyExtraTest, ChainRuleRespectsQuotientGuard)
{
    Analyzer an;
    Var f0 = var("f0");
    Var f1 = var("f1");
    an.bind(f0, Range::fromExtent(16));
    an.bind(f1, Range::fromExtent(4));
    // floordiv(f0*4 + f1, 8): chain rule gives floordiv(f0, 2).
    EXPECT_EQ(exprToString(an.simplify(floordiv(Expr(f0) * 4 + f1, 8))),
              "floordiv(f0, 2)");
    // floormod counterpart: floormod(f0, 2)*4 + f1.
    Expr m = an.simplify(floormod(Expr(f0) * 4 + f1, 8));
    EXPECT_EQ(exprToString(m), "((floormod(f0, 2) * 4) + f1)");
}

TEST(SimplifyExtraTest, ComparisonFoldingWithBounds)
{
    Analyzer an;
    Var x = var("x");
    an.bind(x, Range::fromExtent(8));
    EXPECT_EQ(constIntOr(an.simplify(le(Expr(x) * 2, intImm(14))), -1),
              1);
    EXPECT_EQ(constIntOr(an.simplify(gt(Expr(x), intImm(7))), -1), 0);
    EXPECT_EQ(constIntOr(an.simplify(ne(Expr(x) + 10, intImm(5))), -1),
              1);
}

TEST(SimplifyExtraTest, MinMaxWithBounds)
{
    Analyzer an;
    Var x = var("x");
    an.bind(x, Range::fromExtent(8));
    EXPECT_EQ(an.simplify(minExpr(Expr(x), intImm(100))), Expr(x));
    EXPECT_EQ(constIntOr(an.simplify(maxExpr(Expr(x), intImm(100))), -1),
              100);
    // Unresolvable min stays.
    Expr kept = an.simplify(minExpr(Expr(x), intImm(4)));
    EXPECT_EQ(kept->kind, ExprKind::kMin);
}

TEST(SimplifyExtraTest, TermMergingAndCancellation)
{
    Analyzer an;
    Var x = var("x");
    Var y = var("y");
    EXPECT_EQ(exprToString(an.simplify(Expr(x) + x)), "(x * 2)");
    EXPECT_EQ(constIntOr(an.simplify((Expr(x) + y) - (Expr(y) + x)), -1),
              0);
    EXPECT_EQ(exprToString(an.simplify(Expr(x) * 3 - x)), "(x * 2)");
}

TEST(RegionClampTest, SelectBoundsStayInBuffer)
{
    // A padding-style guarded load: region detection must produce a
    // region (possibly conservative) and never crash.
    Buffer a = makeBuffer("A", {8});
    Buffer b = makeBuffer("B", {10});
    Var v = var("v");
    Expr guarded = select(lt(v, intImm(8)), bufferLoad(a, {Expr(v)}),
                          floatImm(0.0));
    Stmt store = bufferStore(b, guarded, {Expr(v)});
    Stmt loop = makeFor(v, intImm(0), intImm(10), store);
    AccessRegions regions = detectRegions(loop, {});
    ASSERT_EQ(regions.writes.size(), 1u);
    EXPECT_EQ(constIntOr(regions.writes[0].region[0].extent, -1), 10);
}

} // namespace
} // namespace arith
} // namespace tir
