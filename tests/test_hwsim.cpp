/**
 * @file
 * Hardware-model tests: static event extraction (trip counts, per-scope
 * traffic, launches, cooperative fetches, layout-free blocks, shared
 * footprints) and device estimates (constraints plus the monotonicity
 * properties the search relies on).
 */
#include <gtest/gtest.h>

#include "hwsim/device.h"
#include "intrin/tensor_intrin.h"
#include "te/te.h"
#include "tir/schedule.h"

#include "test_util.h"

namespace tir {
namespace {

using hwsim::CpuDevice;
using hwsim::GpuDevice;
using hwsim::ProgramStats;
using hwsim::extractStats;

TEST(StatsTest, CountsScalarOpsAndTraffic)
{
    PrimFunc func = testutil::matmul(8, 8, 8);
    ProgramStats stats = extractStats(func);
    // 8*8*8 = 512 block instances; each does add + mul = 2 ops.
    EXPECT_DOUBLE_EQ(stats.scalar_ops, 1024);
    // Reads: A, B and the C self-read; 4 bytes each (f32).
    EXPECT_DOUBLE_EQ(stats.bytes_read.at("global"), 3 * 512 * 4);
    // Writes: the update store plus 64 init stores.
    EXPECT_DOUBLE_EQ(stats.bytes_written.at("global"),
                     512 * 4 + 64 * 4);
    EXPECT_EQ(stats.launches, 0);
    EXPECT_FALSE(stats.uses_gpu_threads);
}

TEST(StatsTest, LoopKindsTracked)
{
    Buffer a = makeBuffer("A", {64});
    Var i = var("i");
    Var v = var("v");
    BlockPtr block = makeBlock(
        "w", {IterVar(v, Range::fromExtent(64), IterType::kSpatial)}, {},
        {BufferRegion(a, {Range(Expr(v), intImm(1))})},
        bufferStore(a, floatImm(1), {Expr(v)}));
    Stmt realize = blockRealize({Expr(i)},
                                intImm(1, DataType::boolean()), block);
    Stmt loop = makeFor(i, intImm(0), intImm(64), realize,
                        ForKind::kVectorized);
    PrimFunc func = makeFunc("f", {a}, makeRootBlock(loop));
    ProgramStats stats = extractStats(func);
    EXPECT_DOUBLE_EQ(stats.vector_bytes, 64 * 4);
}

TEST(StatsTest, ParallelExtentTracked)
{
    Buffer a = makeBuffer("A", {64});
    Var i = var("i");
    Var v = var("v");
    BlockPtr block = makeBlock(
        "w", {IterVar(v, Range::fromExtent(64), IterType::kSpatial)}, {},
        {BufferRegion(a, {Range(Expr(v), intImm(1))})},
        bufferStore(a, floatImm(1), {Expr(v)}));
    Stmt realize = blockRealize({Expr(i)},
                                intImm(1, DataType::boolean()), block);
    Stmt loop = makeFor(i, intImm(0), intImm(64), realize,
                        ForKind::kParallel);
    PrimFunc func = makeFunc("f", {a}, makeRootBlock(loop));
    ProgramStats stats = extractStats(func);
    EXPECT_DOUBLE_EQ(stats.parallel_extent, 64);
}

TEST(StatsTest, ThreadBindingsPerLaunch)
{
    // Two sequential launches: block sizes must not multiply together.
    Buffer a = makeBuffer("A", {128});
    auto make_kernel = [&](const std::string& name, int64_t threads) {
        Var tx = var("tx_" + name);
        Var v = var("v_" + name);
        BlockPtr block = makeBlock(
            name,
            {IterVar(v, Range::fromExtent(threads),
                     IterType::kSpatial)},
            {}, {BufferRegion(a, {Range(Expr(v), intImm(1))})},
            bufferStore(a, floatImm(0), {Expr(v)}));
        Stmt realize = blockRealize({Expr(tx)},
                                    intImm(1, DataType::boolean()),
                                    block);
        return makeFor(tx, intImm(0), intImm(threads), realize,
                       ForKind::kThreadBinding, "threadIdx.x");
    };
    Stmt body = seq({make_kernel("k1", 128), make_kernel("k2", 64)});
    PrimFunc func = makeFunc("f", {a}, makeRootBlock(body));
    ProgramStats stats = extractStats(func);
    EXPECT_EQ(stats.launches, 2);
    EXPECT_EQ(stats.block_threads, 128); // max, not product
    EXPECT_TRUE(stats.uses_gpu_threads);
}

TEST(StatsTest, CooperativeFetchDividesTraffic)
{
    Buffer src = makeBuffer("S", {256});
    Buffer dst = makeBuffer("D", {256}, DataType::f32(), "shared");
    Var i = var("i");
    Var v = var("v");
    BlockPtr block = makeBlock(
        "copy", {IterVar(v, Range::fromExtent(256), IterType::kSpatial)},
        {BufferRegion(src, {Range(Expr(v), intImm(1))})},
        {BufferRegion(dst, {Range(Expr(v), intImm(1))})},
        bufferStore(dst, bufferLoad(src, {Expr(v)}), {Expr(v)}),
        nullptr, {}, {{"cooperative_fetch", intImm(32)}});
    Stmt realize = blockRealize({Expr(i)},
                                intImm(1, DataType::boolean()), block);
    Stmt loop = makeFor(i, intImm(0), intImm(256), realize);
    PrimFunc func = makeFunc("f", {src, dst}, makeRootBlock(loop));
    ProgramStats stats = extractStats(func);
    // 256 iterations / 32 threads = 8 per-thread copies.
    EXPECT_DOUBLE_EQ(stats.bytes_read.at("global"), 8 * 4);
    EXPECT_DOUBLE_EQ(stats.bytes_written.at("shared"), 8 * 4);
}

TEST(StatsTest, LayoutFreeBlocksCostNothing)
{
    Buffer src = makeBuffer("S", {64});
    Buffer dst = makeBuffer("D", {64});
    Var i = var("i");
    Var v = var("v");
    BlockPtr block = makeBlock(
        "reshape",
        {IterVar(v, Range::fromExtent(64), IterType::kSpatial)},
        {BufferRegion(src, {Range(Expr(v), intImm(1))})},
        {BufferRegion(dst, {Range(Expr(v), intImm(1))})},
        bufferStore(dst, bufferLoad(src, {Expr(v)}), {Expr(v)}),
        nullptr, {}, {{"layout_free", intImm(1)}});
    Stmt realize = blockRealize({Expr(i)},
                                intImm(1, DataType::boolean()), block);
    Stmt loop = makeFor(i, intImm(0), intImm(64), realize);
    PrimFunc func = makeFunc("f", {src, dst}, makeRootBlock(loop));
    ProgramStats stats = extractStats(func);
    EXPECT_EQ(stats.bytes_read.count("global"), 0u);
    EXPECT_DOUBLE_EQ(stats.scalar_ops, 0);
}

TEST(StatsTest, TensorIntrinCountsMacs)
{
    registerBuiltinIntrinsics();
    PrimFunc original = testutil::matmul(64, 64, 64);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(loops[0], {-1, 4});
    std::vector<Var> j_split = sch.split(loops[1], {-1, 4});
    std::vector<Var> k_split = sch.split(loops[2], {-1, 4});
    sch.reorder({i_split[0], j_split[0], k_split[0], i_split[1],
                 j_split[1], k_split[1]});
    sch.decomposeReduction("C", k_split[0]);
    std::string outer = sch.blockize(i_split[1]);
    sch.tensorize(outer, "accel_dot_4x4x4");
    ProgramStats stats = extractStats(sch.func());
    // 16^3 invocations x 64 MACs each = full 64^3.
    EXPECT_DOUBLE_EQ(stats.intrin_macs.at("dot4"), 64.0 * 64 * 64);
    EXPECT_DOUBLE_EQ(stats.intrin_calls.at("dot4"), 16.0 * 16 * 16);
}

TEST(GpuDeviceTest, RejectsOversizedThreadBlocks)
{
    GpuDevice gpu;
    ProgramStats stats;
    stats.uses_gpu_threads = true;
    stats.block_threads = 2048;
    hwsim::RunEstimate estimate = gpu.estimate(stats);
    EXPECT_FALSE(estimate.valid());
    EXPECT_NE(estimate.violation.find("thread"), std::string::npos);
}

TEST(GpuDeviceTest, RejectsOversizedSharedMemory)
{
    GpuDevice gpu;
    ProgramStats stats;
    stats.uses_gpu_threads = true;
    stats.block_threads = 128;
    stats.shared_alloc_bytes = 1 << 20;
    EXPECT_FALSE(gpu.estimate(stats).valid());
}

TEST(GpuDeviceTest, MoreTrafficCostsMore)
{
    GpuDevice gpu;
    ProgramStats base;
    base.uses_gpu_threads = true;
    base.grid_blocks = 1024;
    base.block_threads = 256;
    base.launches = 1;
    base.bytes_read["global"] = 1e8;
    ProgramStats heavier = base;
    heavier.bytes_read["global"] = 4e8;
    EXPECT_GT(gpu.estimate(heavier).latency_us,
              gpu.estimate(base).latency_us);
}

TEST(GpuDeviceTest, TensorCorePipeBeatsScalarPipe)
{
    GpuDevice gpu;
    ProgramStats scalar;
    scalar.uses_gpu_threads = true;
    scalar.grid_blocks = 4096;
    scalar.block_threads = 256;
    scalar.launches = 1;
    scalar.scalar_ops = 2e9;
    ProgramStats tensor = scalar;
    tensor.scalar_ops = 0;
    tensor.intrin_macs["tensor_core"] = 1e9; // same MACs as 2e9 ops
    EXPECT_LT(gpu.estimate(tensor).latency_us,
              gpu.estimate(scalar).latency_us);
}

TEST(GpuDeviceTest, LowOccupancyHurts)
{
    GpuDevice gpu;
    ProgramStats wide;
    wide.uses_gpu_threads = true;
    wide.grid_blocks = 2048;
    wide.block_threads = 256;
    wide.launches = 1;
    wide.scalar_ops = 1e9;
    ProgramStats narrow = wide;
    narrow.grid_blocks = 2;
    EXPECT_GT(gpu.estimate(narrow).latency_us,
              gpu.estimate(wide).latency_us);
}

TEST(GpuDeviceTest, VectorizedCopiesReachHigherBandwidth)
{
    GpuDevice gpu;
    ProgramStats scalar;
    scalar.uses_gpu_threads = true;
    scalar.grid_blocks = 4096;
    scalar.block_threads = 256;
    scalar.launches = 1;
    scalar.bytes_read["global"] = 5e8;
    ProgramStats vectorized = scalar;
    vectorized.vector_bytes = 5e8;
    EXPECT_LT(gpu.estimate(vectorized).latency_us,
              gpu.estimate(scalar).latency_us);
}

TEST(CpuDeviceTest, RejectsGpuPrograms)
{
    CpuDevice cpu;
    ProgramStats stats;
    stats.uses_gpu_threads = true;
    EXPECT_FALSE(cpu.estimate(stats).valid());
}

TEST(CpuDeviceTest, ParallelismScales)
{
    CpuDevice cpu;
    ProgramStats serial;
    serial.scalar_ops = 1e9;
    serial.parallel_extent = 1;
    ProgramStats parallel = serial;
    parallel.parallel_extent = 64;
    EXPECT_GT(cpu.estimate(serial).latency_us,
              4 * cpu.estimate(parallel).latency_us);
}

TEST(CpuDeviceTest, SdotPipeBeatsScalar)
{
    CpuDevice cpu;
    ProgramStats scalar;
    scalar.parallel_extent = 64;
    scalar.scalar_ops = 2e9;
    ProgramStats sdot;
    sdot.parallel_extent = 64;
    sdot.intrin_macs["sdot"] = 1e9;
    EXPECT_LT(cpu.estimate(sdot).latency_us,
              cpu.estimate(scalar).latency_us);
}

TEST(DeviceNameTest, Names)
{
    EXPECT_EQ(GpuDevice().name(), "sim-gpu-rtx3080");
    EXPECT_EQ(CpuDevice().name(), "sim-cpu-graviton2");
}

/** Property: staging through shared memory reduces global traffic. */
TEST(StatsPropertyTest, SharedStagingReducesGlobalTraffic)
{
    PrimFunc original = testutil::matmul(64, 64, 64);
    hwsim::ProgramStats before = extractStats(original);

    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    // Tile j so the staged A row tile is reused across the inner j loop.
    std::vector<Var> split = sch.split(loops[1], {8, 8});
    std::string copy = sch.cacheRead("C", 0, "shared");
    sch.computeAt(copy, split[0]);
    hwsim::ProgramStats after = extractStats(sch.func());
    EXPECT_LT(after.bytes_read.at("global"),
              before.bytes_read.at("global"));
    EXPECT_GT(after.totalBytes("shared"), 0);
}

} // namespace
} // namespace tir
