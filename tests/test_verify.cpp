/**
 * @file
 * Whole-program validator tests (§3.3): threading validation and
 * producer-consumer region cover, on both valid and deliberately broken
 * programs.
 */
#include <gtest/gtest.h>

#include "intrin/tensor_intrin.h"
#include "meta/search.h"
#include "tir/verify.h"
#include "workloads/workloads.h"

#include "test_util.h"

namespace tir {
namespace {

/** One-block kernel with the given nesting of thread tags. */
PrimFunc
kernelWithTags(const std::vector<std::pair<std::string, int64_t>>& tags)
{
    int64_t total = 1;
    for (const auto& [tag, extent] : tags) total *= extent;
    Buffer a = makeBuffer("A", {total});
    std::vector<Var> loop_vars;
    Expr index = nullptr;
    for (size_t i = 0; i < tags.size(); ++i) {
        Var v = var("t" + std::to_string(i));
        loop_vars.push_back(v);
        index = index ? index * tags[i].second + v : Expr(v);
    }
    Var bv = var("v");
    BlockPtr block = makeBlock(
        "w", {IterVar(bv, Range::fromExtent(total), IterType::kSpatial)},
        {}, {BufferRegion(a, {Range(Expr(bv), intImm(1))})},
        bufferStore(a, floatImm(0), {Expr(bv)}));
    Stmt body = blockRealize({index}, intImm(1, DataType::boolean()),
                             block);
    for (size_t i = tags.size(); i > 0; --i) {
        body = makeFor(loop_vars[i - 1], intImm(0),
                       intImm(tags[i - 1].second), body,
                       ForKind::kThreadBinding, tags[i - 1].first);
    }
    return makeFunc("kernel", {a}, makeRootBlock(body));
}

TEST(ThreadVerifyTest, AcceptsStandardLaunch)
{
    PrimFunc func = kernelWithTags(
        {{"blockIdx.x", 32}, {"threadIdx.y", 4}, {"threadIdx.x", 32}});
    EXPECT_TRUE(verifyThreadBindings(func).ok);
}

TEST(ThreadVerifyTest, RejectsDuplicateTag)
{
    PrimFunc func = kernelWithTags(
        {{"blockIdx.x", 4}, {"threadIdx.x", 8}, {"threadIdx.x", 8}});
    VerifyResult result = verifyThreadBindings(func);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message().find("twice"), std::string::npos);
}

TEST(ThreadVerifyTest, RejectsBlockInsideThread)
{
    PrimFunc func = kernelWithTags(
        {{"threadIdx.x", 8}, {"blockIdx.x", 4}});
    VerifyResult result = verifyThreadBindings(func);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message().find("nested"), std::string::npos);
}

TEST(ThreadVerifyTest, RejectsOversizedBlock)
{
    PrimFunc func = kernelWithTags(
        {{"blockIdx.x", 2}, {"threadIdx.y", 64}, {"threadIdx.x", 32}});
    VerifyResult result = verifyThreadBindings(func, 1024);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message().find("exceeds"), std::string::npos);
    // The same launch fits a bigger limit.
    EXPECT_TRUE(verifyThreadBindings(func, 4096).ok);
}

TEST(ThreadVerifyTest, SequentialLaunchesDoNotAccumulate)
{
    PrimFunc k1 = kernelWithTags(
        {{"blockIdx.x", 4}, {"threadIdx.x", 512}});
    PrimFunc k2 = kernelWithTags(
        {{"blockIdx.x", 4}, {"threadIdx.x", 1024}});
    Stmt body = seq({static_cast<const BlockRealizeNode&>(*k1->body)
                         .block->body,
                     static_cast<const BlockRealizeNode&>(*k2->body)
                         .block->body});
    PrimFunc combined =
        makeFunc("two", {k1->params[0], k2->params[0]},
                 makeRootBlock(body));
    EXPECT_TRUE(verifyThreadBindings(combined).ok);
}

TEST(ThreadVerifyTest, WarpIntrinsicNeedsThreadScope)
{
    registerBuiltinIntrinsics();
    // A tensorized block without any thread launch is invalid for a
    // warp-scope intrinsic (the paper's execution-scope validation).
    PrimFunc original = testutil::matmul(64, 64, 64, DataType::f16());
    Schedule sch(original);
    sch.cacheRead("C", 0, "wmma.matrix_a");
    sch.cacheRead("C", 1, "wmma.matrix_b");
    sch.cacheWrite("C", "wmma.accumulator");
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(loops[0], {-1, 16});
    std::vector<Var> j_split = sch.split(loops[1], {-1, 16});
    std::vector<Var> k_split = sch.split(loops[2], {-1, 16});
    sch.reorder({i_split[0], j_split[0], k_split[0], i_split[1],
                 j_split[1], k_split[1]});
    sch.decomposeReduction("C", k_split[0]);
    std::string outer = sch.blockize(i_split[1]);
    sch.tensorize(outer, "wmma_16x16x16_f16");

    VerifyResult no_threads = verifyThreadBindings(sch.func());
    EXPECT_FALSE(no_threads.ok);
    EXPECT_NE(no_threads.message().find("warp"), std::string::npos);

    // Binding the outer loop to a thread launch fixes it.
    sch.bind(i_split[0], "blockIdx.x");
    sch.bind(j_split[0], "threadIdx.y");
    EXPECT_TRUE(verifyThreadBindings(sch.func()).ok);
}

TEST(CoverVerifyTest, AcceptsCompletePipelines)
{
    PrimFunc func = testutil::matmulRelu(16, 16, 8);
    EXPECT_TRUE(verifyRegionCover(func).ok);
}

TEST(CoverVerifyTest, RejectsHalfProducedBuffer)
{
    // Producer writes only rows [0, 8) of B but the consumer reads all
    // 16 rows.
    Buffer a = makeBuffer("A", {16});
    Buffer b = makeBuffer("B", {16});
    Buffer c = makeBuffer("C", {16});
    auto stage = [&](const std::string& name, const Buffer& src,
                     const Buffer& dst, int64_t extent) {
        Var lv = var(name + "_i");
        Var bv = var(name + "_v");
        BlockPtr block = makeBlock(
            name,
            {IterVar(bv, Range::fromExtent(extent), IterType::kSpatial)},
            {BufferRegion(src, {Range(Expr(bv), intImm(1))})},
            {BufferRegion(dst, {Range(Expr(bv), intImm(1))})},
            bufferStore(dst, bufferLoad(src, {Expr(bv)}), {Expr(bv)}));
        Stmt realize = blockRealize({Expr(lv)},
                                    intImm(1, DataType::boolean()),
                                    block);
        return makeFor(lv, intImm(0), intImm(extent), realize);
    };
    Stmt half_producer = stage("produce", a, b, 8);
    Stmt consumer = stage("consume", b, c, 16);
    PrimFunc func = makeFunc("broken", {a, c},
                             makeRootBlock(seq({half_producer, consumer}),
                                           {b}));
    VerifyResult result = verifyRegionCover(func);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message().find("cover"), std::string::npos);
}

TEST(CoverVerifyTest, RejectsUseBeforeDef)
{
    Buffer a = makeBuffer("A", {8});
    Buffer b = makeBuffer("B", {8});
    Buffer c = makeBuffer("C", {8});
    Var lv = var("i");
    Var bv = var("v");
    BlockPtr consume = makeBlock(
        "consume",
        {IterVar(bv, Range::fromExtent(8), IterType::kSpatial)},
        {BufferRegion(b, {Range(Expr(bv), intImm(1))})},
        {BufferRegion(c, {Range(Expr(bv), intImm(1))})},
        bufferStore(c, bufferLoad(b, {Expr(bv)}), {Expr(bv)}));
    Stmt body = makeFor(lv, intImm(0), intImm(8),
                        blockRealize({Expr(lv)},
                                     intImm(1, DataType::boolean()),
                                     consume));
    PrimFunc func = makeFunc("broken", {a, c},
                             makeRootBlock(body, {b}));
    VerifyResult result = verifyRegionCover(func);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message().find("before"), std::string::npos);
}

TEST(CoverVerifyTest, AcceptsTunedPipelines)
{
    // Every tuned program must pass both validators (they run inside
    // the search too, but check explicitly here).
    registerBuiltinIntrinsics();
    workloads::OpSpec op = workloads::gpuSuiteSmall()[1]; // C2D
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, op.einsum_block, "gpu",
                        {"wmma_16x16x16_f16"}};
    meta::TuneOptions options;
    options.population = 4;
    options.generations = 1;
    meta::TuneResult result =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR);
    EXPECT_TRUE(verifyThreadBindings(result.best_func).ok);
    EXPECT_TRUE(verifyRegionCover(result.best_func).ok);
}

} // namespace
} // namespace tir
