/**
 * @file
 * Shared helpers for schedule tests: build common workloads and check
 * that a transformed function computes the same values as the original.
 */
#ifndef TENSORIR_TESTS_TEST_UTIL_H
#define TENSORIR_TESTS_TEST_UTIL_H

#include <gtest/gtest.h>

#include "runtime/vm.h"
#include "te/te.h"

namespace tir {
namespace testutil {

/** Build a plain matmul C[n,m] = A[n,k] * B[k,m]. */
inline PrimFunc
matmul(int64_t n, int64_t m, int64_t k,
       DataType dtype = DataType::f32())
{
    te::Builder builder;
    Buffer a = builder.placeholder("A", {n, k}, dtype);
    Buffer b = builder.placeholder("B", {k, m}, dtype);
    Buffer c = builder.sumReduce(
        "C", {n, m}, {k},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return bufferLoad(a, {s[0], r[0]}) *
                   bufferLoad(b, {r[0], s[1]});
        },
        dtype);
    return builder.build("matmul", {c});
}

/** Build matmul followed by relu (the paper's Figure 8 workload). */
inline PrimFunc
matmulRelu(int64_t n, int64_t m, int64_t k)
{
    te::Builder builder;
    Buffer a = builder.placeholder("A", {n, k});
    Buffer b = builder.placeholder("B", {k, m});
    Buffer c = builder.sumReduce(
        "C", {n, m}, {k},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return bufferLoad(a, {s[0], r[0]}) *
                   bufferLoad(b, {r[0], s[1]});
        });
    Buffer d = builder.compute(
        "D", {n, m},
        [&](const std::vector<Var>& v) {
            return maxExpr(bufferLoad(c, {v[0], v[1]}), floatImm(0.0));
        });
    return builder.build("matmul_relu", {d});
}

/**
 * Run `candidate` and `reference` on identical random inputs and compare
 * every output buffer. Both functions must share the parameter list
 * layout (same count, shapes, dtypes, same input/output split).
 */
inline void
expectSameResults(const PrimFunc& candidate, const PrimFunc& reference,
                  int num_outputs = 1, double tolerance = 1e-6,
                  uint64_t seed = 123)
{
    ASSERT_EQ(candidate->params.size(), reference->params.size());
    Rng rng(seed);
    std::vector<runtime::NDArray> cand_args;
    std::vector<runtime::NDArray> ref_args;
    for (const Buffer& param : reference->params) {
        std::vector<int64_t> shape;
        for (size_t d = 0; d < param->ndim(); ++d) {
            shape.push_back(param->shapeInt(d));
        }
        runtime::NDArray array(param->dtype, shape);
        if (param->dtype.isInt()) {
            array.fillRandom(rng, -4, 4);
        } else {
            array.fillRandom(rng);
        }
        cand_args.push_back(array);
        ref_args.push_back(std::move(array));
    }
    std::vector<runtime::NDArray*> cand_ptrs;
    std::vector<runtime::NDArray*> ref_ptrs;
    for (auto& a : cand_args) cand_ptrs.push_back(&a);
    for (auto& a : ref_args) ref_ptrs.push_back(&a);

    // Bytecode VM by default; TENSORIR_FORCE_TREEWALK=1 (exercised by
    // the forced-tree-walk CI pass) reruns everything on the oracle.
    runtime::execute(candidate, cand_ptrs);
    runtime::execute(reference, ref_ptrs);

    size_t first_output = reference->params.size() -
                          static_cast<size_t>(num_outputs);
    for (size_t i = first_output; i < reference->params.size(); ++i) {
        double diff = cand_args[i].maxAbsDiff(ref_args[i]);
        EXPECT_LE(diff, tolerance)
            << "output " << i << " diverged after scheduling";
    }
}

} // namespace testutil
} // namespace tir

#endif // TENSORIR_TESTS_TEST_UTIL_H
