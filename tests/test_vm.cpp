/**
 * @file
 * Bytecode VM tests: the VM must reproduce the tree-walking reference
 * oracle bit for bit — outputs, argument validation, select laziness,
 * fuel accounting, failpoint behaviour — and the intrinsic registry
 * both engines share must be safe under concurrent registration
 * (exercised under TSan by the CI job).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "intrin/tensor_intrin.h"
#include "runtime/vm.h"
#include "support/failpoint.h"
#include "tir/schedule.h"

#include "test_util.h"

namespace tir {
namespace {

using runtime::EvalError;
using runtime::Interpreter;
using runtime::NDArray;
using runtime::VirtualMachine;

/** Fill per-parameter inputs the same way for both engines. */
std::vector<NDArray>
makeInputs(const PrimFunc& func, uint64_t seed)
{
    Rng rng(seed);
    std::vector<NDArray> arrays;
    for (const Buffer& param : func->params) {
        std::vector<int64_t> shape;
        for (size_t d = 0; d < param->ndim(); ++d) {
            shape.push_back(param->shapeInt(d));
        }
        NDArray array(param->dtype, shape);
        if (param->dtype.isInt()) {
            array.fillRandom(rng, -4, 4);
        } else {
            array.fillRandom(rng);
        }
        arrays.push_back(std::move(array));
    }
    return arrays;
}

std::vector<NDArray*>
ptrs(std::vector<NDArray>& arrays)
{
    std::vector<NDArray*> out;
    for (NDArray& a : arrays) out.push_back(&a);
    return out;
}

/** Run `func` through both engines on identical inputs and require
 *  bit-identical results on every argument buffer. */
void
expectEnginesAgree(const PrimFunc& func, uint64_t seed = 7)
{
    std::vector<NDArray> vm_args = makeInputs(func, seed);
    std::vector<NDArray> tw_args = makeInputs(func, seed);
    std::vector<NDArray*> vm_ptrs = ptrs(vm_args);
    std::vector<NDArray*> tw_ptrs = ptrs(tw_args);

    VirtualMachine vm;
    vm.run(runtime::compile(func), vm_ptrs);
    Interpreter interp;
    interp.run(func, tw_ptrs);

    for (size_t i = 0; i < vm_args.size(); ++i) {
        EXPECT_EQ(vm_args[i].maxAbsDiff(tw_args[i]), 0.0)
            << "argument " << i << " of " << func->name
            << " differs between VM and tree-walker";
    }
}

TEST(VmTest, MatmulMatchesTreeWalkerBitExact)
{
    expectEnginesAgree(testutil::matmul(12, 9, 7));
}

TEST(VmTest, IntermediateBuffersMatch)
{
    // matmul_relu allocates the matmul result as an intermediate: the
    // VM allocates it per run, the tree-walker lazily.
    expectEnginesAgree(testutil::matmulRelu(8, 6, 5));
}

TEST(VmTest, IntegerWorkloadStaysExact)
{
    expectEnginesAgree(testutil::matmul(6, 6, 6, DataType::i8()));
}

TEST(VmTest, ScheduledImperfectSplitMatches)
{
    // Imperfect split introduces predicates and min/max bounds.
    PrimFunc original = testutil::matmul(10, 8, 8);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    sch.split(loops[0], {-1, 3});
    expectEnginesAgree(sch.func());
}

TEST(VmTest, TensorizedFuncRunsIntrinsicsThroughVm)
{
    registerBuiltinIntrinsics();
    PrimFunc original = testutil::matmul(8, 8, 8);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(loops[0], {-1, 4});
    std::vector<Var> j_split = sch.split(loops[1], {-1, 4});
    std::vector<Var> k_split = sch.split(loops[2], {-1, 4});
    sch.reorder({i_split[0], j_split[0], k_split[0], i_split[1],
                 j_split[1], k_split[1]});
    sch.decomposeReduction("C", k_split[0]);
    std::string outer = sch.blockize(i_split[1]);
    sch.tensorize(outer, "accel_dot_4x4x4");
    expectEnginesAgree(sch.func());
}

TEST(VmTest, SelectIsLazy)
{
    // Same program as the interpreter's SelectIsLazy test: the guarded
    // branch indexes out of bounds when taken, so an eager select would
    // fault. Compiled select must branch, not evaluate both sides.
    Buffer a = makeBuffer("A", {4});
    Buffer b = makeBuffer("B", {6});
    Var i = var("i");
    Var v = var("v");
    Expr guarded = select(lt(v, intImm(4)), bufferLoad(a, {Expr(v)}),
                          floatImm(0.0));
    BlockPtr block = makeBlock(
        "pad", {IterVar(v, Range::fromExtent(6), IterType::kSpatial)},
        {BufferRegion(a, {Range(intImm(0), intImm(4))})},
        {BufferRegion(b, {Range(Expr(v), intImm(1))})},
        bufferStore(b, guarded, {Expr(v)}));
    Stmt loop = makeFor(i, intImm(0), intImm(6),
                        blockRealize({Expr(i)},
                                     intImm(1, DataType::boolean()),
                                     block));
    PrimFunc func = makeFunc("f", {a, b}, makeRootBlock(loop));
    NDArray a_data(DataType::f32(), {4});
    NDArray b_data(DataType::f32(), {6});
    for (int64_t e = 0; e < 4; ++e) a_data.at(e) = e + 1;
    VirtualMachine vm;
    vm.run(runtime::compile(func), {&a_data, &b_data});
    EXPECT_EQ(b_data.at(3), 4.0);
    EXPECT_EQ(b_data.at(4), 0.0);
    EXPECT_EQ(b_data.at(5), 0.0);
}

TEST(VmTest, PerDimensionShapeValidation)
{
    // Same element count, different shape: must be rejected by both
    // engines (a 2x6 array bound to a 3x4 parameter would make every
    // strided access read the wrong cell).
    PrimFunc f = testutil::matmul(3, 4, 4);
    NDArray a(DataType::f32(), {3, 4});
    NDArray b(DataType::f32(), {4, 4});
    NDArray c_wrong(DataType::f32(), {2, 6});
    Interpreter interp;
    EXPECT_THROW(interp.run(f, {&a, &b, &c_wrong}), FatalError);
    VirtualMachine vm;
    runtime::CompiledFunc compiled = runtime::compile(f);
    EXPECT_THROW(vm.run(compiled, {&a, &b, &c_wrong}), FatalError);

    NDArray c(DataType::f32(), {3, 4});
    EXPECT_NO_THROW(vm.run(compiled, {&a, &b, &c}));
}

TEST(VmTest, ArgumentCountValidation)
{
    PrimFunc f = testutil::matmul(2, 2, 2);
    NDArray a(DataType::f32(), {2, 2});
    VirtualMachine vm;
    EXPECT_THROW(vm.run(runtime::compile(f), {&a}), FatalError);
}

TEST(VmTest, UnderIndexedAccessIsRejected)
{
    // A rank-2 buffer accessed with one index must be an internal
    // error, not a silent wrong-element access. The bufferStore
    // factory already rejects this shape at construction, so build the
    // node directly the way a buggy pass could.
    Buffer a = makeBuffer("A", {4, 5});
    Stmt body = std::make_shared<const BufferStoreNode>(
        a, floatImm(1.0), std::vector<Expr>{intImm(1)});
    PrimFunc f = makeFunc("under_indexed", {a}, makeRootBlock(body));
    NDArray data(DataType::f32(), {4, 5});
    Interpreter interp;
    EXPECT_THROW(interp.run(f, {&data}), InternalError);
    EXPECT_THROW(runtime::compile(f), InternalError);
}

TEST(VmTest, ShadowedLoopVarRestoredAfterInnerLoop)
{
    // Regression: the same VarNode drives an inner loop nested in an
    // outer loop that keeps using it afterwards. Unconditional erase on
    // inner-loop exit used to destroy the outer binding.
    Buffer a = makeBuffer("A", {8});
    Buffer b = makeBuffer("B", {2});
    Var i = var("i");
    Stmt inner = makeFor(i, intImm(0), intImm(2),
                         bufferStore(b, cast(DataType::f32(), Expr(i)),
                                     {Expr(i)}));
    Stmt after = bufferStore(a, cast(DataType::f32(), Expr(i)),
                             {Expr(i)});
    Stmt outer = makeFor(i, intImm(0), intImm(8), seq({inner, after}));
    PrimFunc f = makeFunc("shadow", {a, b}, makeRootBlock(outer));

    NDArray a_data(DataType::f32(), {8});
    NDArray b_data(DataType::f32(), {2});
    Interpreter interp;
    interp.run(f, {&a_data, &b_data});
    for (int64_t e = 0; e < 8; ++e) EXPECT_EQ(a_data.at(e), double(e));

    NDArray a_vm(DataType::f32(), {8});
    NDArray b_vm(DataType::f32(), {2});
    VirtualMachine vm;
    vm.run(runtime::compile(f), {&a_vm, &b_vm});
    EXPECT_EQ(a_vm.maxAbsDiff(a_data), 0.0);
    EXPECT_EQ(b_vm.maxAbsDiff(b_data), 0.0);
}

TEST(VmTest, FailpointFiresLikeTreeWalker)
{
    // Both engines share the interp.run failpoint site and surface it
    // as the same structured EvalError.
    PrimFunc f = testutil::matmul(4, 4, 4);
    std::vector<NDArray> args = makeInputs(f, 3);
    std::vector<NDArray*> arg_ptrs = ptrs(args);
    failpoint::ScopedFailpoints guard("seed=5; interp.run=error(1)");
    Interpreter interp;
    std::string tw_what;
    try {
        interp.run(f, arg_ptrs);
        FAIL() << "tree-walker did not hit the failpoint";
    } catch (const EvalError& e) {
        tw_what = e.what();
    }
    VirtualMachine vm;
    runtime::CompiledFunc compiled = runtime::compile(f);
    try {
        vm.run(compiled, arg_ptrs);
        FAIL() << "VM did not hit the failpoint";
    } catch (const EvalError& e) {
        EXPECT_EQ(tw_what, e.what());
    }
}

TEST(VmTest, ForceTreeWalkSelectsOracle)
{
    PrimFunc f = testutil::matmul(5, 5, 5);
    runtime::setForceTreeWalk(true);
    EXPECT_TRUE(runtime::forceTreeWalk());
    std::vector<NDArray> forced = makeInputs(f, 11);
    std::vector<NDArray*> forced_ptrs = ptrs(forced);
    runtime::execute(f, forced_ptrs);
    runtime::setForceTreeWalk(false);
    EXPECT_FALSE(runtime::forceTreeWalk());
    std::vector<NDArray> vm_args = makeInputs(f, 11);
    std::vector<NDArray*> vm_ptrs = ptrs(vm_args);
    runtime::execute(f, vm_ptrs);
    runtime::setForceTreeWalk(std::nullopt);
    for (size_t i = 0; i < forced.size(); ++i) {
        EXPECT_EQ(forced[i].maxAbsDiff(vm_args[i]), 0.0);
    }
}

TEST(VmFuelTest, StepLimitParityAtEveryBudget)
{
    // Find the exact statement count via the tree-walker, then check
    // that every budget below it exhausts both engines identically —
    // including the partially-written outputs at the point of abort.
    PrimFunc f = testutil::matmul(3, 3, 3);
    runtime::CompiledFunc compiled = runtime::compile(f);

    uint64_t total = 0;
    for (uint64_t limit = 1;; ++limit) {
        std::vector<NDArray> args = makeInputs(f, 1);
        std::vector<NDArray*> arg_ptrs = ptrs(args);
        Interpreter interp;
        interp.setStepLimit(limit);
        try {
            interp.run(f, arg_ptrs);
            total = limit;
            break;
        } catch (const EvalError&) {
        }
        ASSERT_LT(limit, 100000u) << "matmul(3,3,3) runaway";
    }
    ASSERT_GT(total, 1u);

    for (uint64_t limit = 1; limit <= total; ++limit) {
        std::vector<NDArray> tw_args = makeInputs(f, 1);
        std::vector<NDArray*> tw_ptrs = ptrs(tw_args);
        Interpreter interp;
        interp.setStepLimit(limit);
        bool tw_threw = false;
        std::string tw_what;
        try {
            interp.run(f, tw_ptrs);
        } catch (const EvalError& e) {
            tw_threw = true;
            tw_what = e.what();
        }

        std::vector<NDArray> vm_args = makeInputs(f, 1);
        std::vector<NDArray*> vm_ptrs = ptrs(vm_args);
        VirtualMachine vm;
        vm.setStepLimit(limit);
        bool vm_threw = false;
        std::string vm_what;
        try {
            vm.run(compiled, vm_ptrs);
        } catch (const EvalError& e) {
            vm_threw = true;
            vm_what = e.what();
        }

        EXPECT_EQ(tw_threw, vm_threw) << "fuel divergence at limit "
                                      << limit << " of " << total;
        EXPECT_EQ(tw_what, vm_what);
        for (size_t i = 0; i < tw_args.size(); ++i) {
            EXPECT_EQ(tw_args[i].maxAbsDiff(vm_args[i]), 0.0)
                << "partial output " << i << " differs at limit "
                << limit;
        }
    }
}

TEST(VmFuelTest, StepLimitEnvParsingIsStrict)
{
    // strtoull would quietly turn garbage into 0 = unlimited fuel; the
    // parser must reject anything that is not a plain decimal count.
    Interpreter::clearDefaultStepLimit();
    ASSERT_EQ(setenv("TENSORIR_STEP_LIMIT", "12345", 1), 0);
    EXPECT_EQ(Interpreter::defaultStepLimit(), 12345u);
    ASSERT_EQ(setenv("TENSORIR_STEP_LIMIT", "abc", 1), 0);
    EXPECT_THROW(Interpreter::defaultStepLimit(), FatalError);
    ASSERT_EQ(setenv("TENSORIR_STEP_LIMIT", "10x", 1), 0);
    EXPECT_THROW(Interpreter::defaultStepLimit(), FatalError);
    ASSERT_EQ(setenv("TENSORIR_STEP_LIMIT", "-1", 1), 0);
    EXPECT_THROW(Interpreter::defaultStepLimit(), FatalError);
    ASSERT_EQ(setenv("TENSORIR_STEP_LIMIT", "", 1), 0);
    EXPECT_THROW(Interpreter::defaultStepLimit(), FatalError);
    ASSERT_EQ(setenv("TENSORIR_STEP_LIMIT",
                     "99999999999999999999999999", 1),
              0);
    EXPECT_THROW(Interpreter::defaultStepLimit(), FatalError);
    ASSERT_EQ(unsetenv("TENSORIR_STEP_LIMIT"), 0);
    EXPECT_EQ(Interpreter::defaultStepLimit(), 0u);
}

TEST(IntrinRegistryTest, ConcurrentRegistrationAndExecution)
{
    // Search workers execute candidates (reading the registry) while
    // other code may still register intrinsics. Snapshot publication
    // must make that race benign — this test runs under TSan in CI.
    registerBuiltinIntrinsics();
    PrimFunc f = testutil::matmul(4, 4, 4);
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < 2; ++w) {
        threads.emplace_back([&, w]() {
            for (int r = 0; r < 50; ++r) {
                Interpreter::registerIntrinsic(
                    "tsan.probe_" + std::to_string(w) + "_" +
                        std::to_string(r),
                    [](runtime::ExecContext&, const CallNode&) {});
            }
            stop.store(true);
        });
    }
    for (int w = 0; w < 2; ++w) {
        threads.emplace_back([&]() {
            while (!stop.load()) {
                std::vector<NDArray> args = makeInputs(f, 2);
                std::vector<NDArray*> arg_ptrs = ptrs(args);
                runtime::execute(f, arg_ptrs);
                EXPECT_TRUE(
                    Interpreter::hasIntrinsic("accel.tile_mma_4x4x4"));
            }
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_TRUE(Interpreter::hasIntrinsic("tsan.probe_0_49"));
    EXPECT_TRUE(Interpreter::hasIntrinsic("tsan.probe_1_49"));
}

} // namespace
} // namespace tir
