/**
 * @file
 * Deep tests of the fused pseudo-iterator machinery in the quasi-affine
 * matcher: div/mod over complete chains, suffix-chain coordinate
 * unification, leaf-in-chain independence, guard implication, and the
 * relaxed interval-containment tier.
 */
#include <gtest/gtest.h>

#include "arith/iter_map.h"
#include "ir/printer.h"
#include "tir/schedule.h"
#include "tir/verify.h"

#include "test_util.h"

namespace tir {
namespace arith {
namespace {

DomMap
doms(std::initializer_list<std::pair<Var, int64_t>> entries)
{
    DomMap result;
    for (const auto& [v, extent] : entries) {
        result[v.get()] = Range::fromExtent(extent);
    }
    return result;
}

TEST(ChainTest, DivOfSumIsAPseudoAtomChain)
{
    // floordiv(f0*64 + f1, 16): the fused source has extent 256.
    Var f0 = var("f0");
    Var f1 = var("f1");
    Expr binding = floordiv(Expr(f0) * 64 + f1, 16);
    IterChain chain = parseIterChain(binding, doms({{f0, 4}, {f1, 64}}));
    ASSERT_TRUE(chain.valid) << chain.error;
    ASSERT_EQ(chain.terms.size(), 1u);
    const IterAtom& atom = chain.terms[0].first;
    EXPECT_EQ(atom.source, nullptr); // pseudo source
    EXPECT_EQ(atom.source_extent, 256);
    EXPECT_EQ(atom.div, 16);
    EXPECT_EQ(atom.extent, 16);
    EXPECT_EQ(atom.vars.size(), 2u);
}

TEST(ChainTest, ModThenDivComposeOnChains)
{
    Var f0 = var("f0");
    Var f1 = var("f1");
    // floormod(floordiv(chain, 4), 8)
    Expr binding = floormod(floordiv(Expr(f0) * 32 + f1, 4), 8);
    IterChain chain = parseIterChain(binding, doms({{f0, 8}, {f1, 32}}));
    ASSERT_TRUE(chain.valid) << chain.error;
    EXPECT_EQ(chain.extent, 8);
}

TEST(ChainTest, IncompleteChainRejected)
{
    // f0*64 + f1 with f1 extent 32 (gap between scale 64 and extent 32).
    Var f0 = var("f0");
    Var f1 = var("f1");
    Expr binding = floordiv(Expr(f0) * 64 + f1, 16);
    IterChain chain = parseIterChain(binding, doms({{f0, 4}, {f1, 32}}));
    EXPECT_FALSE(chain.valid);
}

/** Helper to validate a block with the given bindings and domains. */
BindingValidation
validate(const std::vector<Expr>& bindings,
         const std::vector<int64_t>& iter_extents, const DomMap& d,
         Expr predicate = nullptr)
{
    std::vector<IterVar> iters;
    std::vector<Range> region;
    std::vector<Expr> indices;
    for (size_t i = 0; i < iter_extents.size(); ++i) {
        Var v = var("bv" + std::to_string(i));
        iters.emplace_back(v, Range::fromExtent(iter_extents[i]),
                           IterType::kSpatial);
        region.emplace_back(Expr(v), intImm(1));
        indices.push_back(v);
    }
    std::vector<int64_t> shape;
    for (int64_t e : iter_extents) shape.push_back(e);
    Buffer buf = makeBuffer("B", shape);
    BlockPtr block = makeBlock("b", iters, {},
                               {BufferRegion(buf, region)},
                               bufferStore(buf, floatImm(0), indices));
    Stmt realize = blockRealize(
        bindings, predicate ? predicate : intImm(1, DataType::boolean()),
        block);
    return validateBlockBindings(
        static_cast<const BlockRealizeNode&>(*realize), d);
}

TEST(ChainValidationTest, FuseThenSplitDigitsAreIndependent)
{
    // The Apad pattern: all four bindings are digits of one fused var
    // split into (f0, f1); suffix chains must unify.
    Var f0 = var("f0");
    Var f1 = var("f1");
    DomMap d = doms({{f0, 25}, {f1, 64}});
    Expr fused = Expr(f0) * 64 + f1; // extent 1600 = 10*10*16
    BindingValidation result =
        validate({floordiv(fused, 160),
                  floormod(floordiv(fused, 16), 10),
                  floormod(fused, 16)},
                 {10, 10, 16}, d);
    EXPECT_TRUE(result.affine) << result.error;
}

TEST(ChainValidationTest, GuardImplicationOnImperfectSplit)
{
    // 5*512 = 2560 > 2304: the guard `fused < 2304` must imply the
    // per-iterator guard floordiv(fused, 16) < 144.
    Var f0 = var("f0");
    Var f1 = var("f1");
    DomMap d = doms({{f0, 5}, {f1, 512}});
    Expr fused = Expr(f0) * 512 + f1;
    Expr guard = lt(fused, intImm(2304));
    BindingValidation with_guard = validate(
        {floordiv(fused, 16), floormod(fused, 16)}, {144, 16}, d, guard);
    EXPECT_TRUE(with_guard.affine) << with_guard.error;
    BindingValidation without = validate(
        {floordiv(fused, 16), floormod(fused, 16)}, {144, 16}, d);
    EXPECT_FALSE(without.affine);
}

TEST(ChainValidationTest, OverlappingChainAtomsRejected)
{
    // Both iterators read overlapping ranges of the fused value.
    Var f0 = var("f0");
    Var f1 = var("f1");
    DomMap d = doms({{f0, 4}, {f1, 64}});
    Expr fused = Expr(f0) * 64 + f1;
    BindingValidation result = validate(
        {floordiv(fused, 16), floormod(fused, 32)}, {16, 32}, d);
    EXPECT_FALSE(result.affine);
}

TEST(ChainValidationTest, SubsetBindingsAccepted)
{
    // A producer moved under a consumer tile instantiates a subset of
    // its domain per outer iteration: the binding covers 32 of the 64
    // domain values for each fixed outer context (region-cover
    // validation owns completeness across iterations).
    Var outer = var("outer");
    Var local = var("local");
    Var other = var("other");
    DomMap d = doms({{outer, 8}, {local, 4}, {other, 4}});
    BindingValidation result = validate(
        {Expr(outer) * 4 + local, Expr(other)}, {64, 4}, d);
    EXPECT_TRUE(result.affine) << result.error;
}

TEST(ChainValidationTest, RelaxedTierStillRejectsScaledSingleVar)
{
    Var i = var("i");
    DomMap d = doms({{i, 16}});
    BindingValidation result = validate({Expr(i) * 2}, {32}, d);
    EXPECT_FALSE(result.affine);
}

TEST(ChainValidationTest, RelaxedTierAcceptsInBoundsMixes)
{
    // A base + digits binding outside the strict grammar but provably
    // inside the domain.
    Var a = var("a");
    Var b = var("b");
    DomMap d = doms({{a, 3}, {b, 5}});
    // a*5 + b covers [0, 15) within a domain of 16: fine (region-cover
    // validation owns completeness).
    BindingValidation result = validate({Expr(a) * 5 + b}, {16}, d);
    EXPECT_TRUE(result.affine) << result.error;
}

} // namespace
} // namespace arith

namespace {

TEST(IrregularComputationTest, ScheduleInsideOpaqueOuterBlock)
{
    // §3.2: "a schedulable block can contain non-schedulable sub-blocks
    // ... an opaque block can also contain a schedulable sub-block". We
    // can keep transforming loops that live inside a nested block while
    // the outer block is never inspected.
    PrimFunc original = testutil::matmul(16, 16, 16);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    sch.decomposeReduction("C", loops[2]);
    std::string outer = sch.blockize(loops[2]);
    // The blockized outer block isolates the tile; we can still split
    // loops of the *inner* block without touching the outer signature.
    BlockPtr outer_before = sch.getBlock(outer);
    std::vector<Var> inner_loops = sch.getLoops("C");
    sch.split(inner_loops.back(), {-1, 2});
    BlockPtr outer_after = sch.getBlock(outer);
    EXPECT_EQ(outer_before->iter_vars.size(),
              outer_after->iter_vars.size());
    sch.validateAffineBindings();
    testutil::expectSameResults(sch.func(), original);
}

TEST(CooperativeVerifyTest, ClaimBeyondLaunchRejected)
{
    PrimFunc original = testutil::matmul(32, 32, 32);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    sch.bind(loops[0], "blockIdx.x");
    sch.bind(loops[1], "threadIdx.x");
    std::string copy = sch.cacheRead("C", 0, "shared");
    sch.computeAt(copy, loops[2]);
    // Claiming more threads than the launch provides must fail.
    sch.annotateBlock(copy, "cooperative_fetch",
                      intImm(32 * 1024, DataType::i64()));
    VerifyResult result = verifyThreadBindings(sch.func());
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message().find("cooperative"), std::string::npos);
    // A sane claim passes.
    sch.annotateBlock(copy, "cooperative_fetch",
                      intImm(32, DataType::i64()));
    EXPECT_TRUE(verifyThreadBindings(sch.func()).ok);
}

} // namespace
} // namespace tir
