/**
 * @file
 * Dataflow-framework tests (tir/analysis/dataflow.h) and the
 * analysis-driven lowering passes built on it (lower/optimize.cpp):
 * the three lints (TIR-L001/L002/L003), dead-store and barrier-elision
 * semantics, the insertStorageSync + elideRedundantSync round-trip
 * property over randomly staged Table 1 schedules, three-engine
 * differential parity of optimized vs unoptimized lowerings, and the
 * shared analysis-report cache identity.
 */
#include <gtest/gtest.h>

#include "hwsim/device.h"
#include "lower/lower.h"
#include "meta/search.h"
#include "runtime/interpreter.h"
#include "runtime/jit.h"
#include "runtime/vm.h"
#include "tir/analysis/dataflow.h"
#include "tir/schedule.h"
#include "workloads/workloads.h"

#include "test_util.h"

namespace tir {
namespace {

using analysis::AnalysisReport;
using analysis::DataflowInfo;
using analysis::DiagKind;
using analysis::Severity;

/** for tx in [0, extent) bound to threadIdx.x around `body`. */
Stmt
launch(const Var& tx, int64_t extent, Stmt body)
{
    return makeFor(tx, intImm(0), intImm(extent), std::move(body),
                   ForKind::kThreadBinding, "threadIdx.x");
}

Stmt
serial(const Var& i, int64_t extent, Stmt body)
{
    return makeFor(i, intImm(0), intImm(extent), std::move(body),
                   ForKind::kSerial);
}

int
countSyncs(const PrimFunc& func)
{
    return static_cast<int>(
        analysis::extractAccesses(func->body).syncs.size());
}

int
countStores(const PrimFunc& func)
{
    int stores = 0;
    for (const analysis::AccessSite& site :
         analysis::extractAccesses(func->body).sites) {
        if (site.is_write && !site.opaque) ++stores;
    }
    return stores;
}

int
countDiagnostics(const AnalysisReport& report, DiagKind kind)
{
    int n = 0;
    for (const analysis::Diagnostic& diag : report.diagnostics) {
        if (diag.kind == kind) ++n;
    }
    return n;
}

// --- TIR-L001 use-before-init --------------------------------------------

TEST(DataflowLintTest, UseBeforeInitIsError)
{
    // B[i] = T[i] with nothing ever writing T: an unguarded read of
    // uninitialized storage in a loop that provably runs.
    Buffer b = makeBuffer("B", {8}, DataType::f32());
    Buffer t = makeBuffer("T", {8}, DataType::f32(), "global");
    Var i = var("i");
    PrimFunc func = makeFunc(
        "uninit", {b},
        serial(i, 8, bufferStore(b, bufferLoad(t, {i}), {i})));

    AnalysisReport report = analysis::lintFunc(func);
    EXPECT_TRUE(report.hasError(DiagKind::kUseBeforeInit))
        << report.summary();
    EXPECT_NE(report.summary().find("TIR-L001"), std::string::npos)
        << report.summary();
    EXPECT_NE(report.summary().find("'T'"), std::string::npos)
        << report.summary();
}

TEST(DataflowLintTest, GuardedUseBeforeInitIsWarning)
{
    // The same read under a conditional: it may never execute, so the
    // finding is reported but demoted to a warning.
    Buffer b = makeBuffer("B", {8}, DataType::f32());
    Buffer t = makeBuffer("T", {8}, DataType::f32(), "global");
    Var i = var("i");
    PrimFunc func = makeFunc(
        "uninit_guarded", {b},
        serial(i, 8,
               ifThenElse(lt(i, intImm(3)),
                          bufferStore(b, bufferLoad(t, {i}), {i}))));

    AnalysisReport report = analysis::lintFunc(func);
    EXPECT_FALSE(report.hasError(DiagKind::kUseBeforeInit))
        << report.summary();
    EXPECT_EQ(countDiagnostics(report, DiagKind::kUseBeforeInit), 1)
        << report.summary();
}

TEST(DataflowLintTest, InitializedReadIsClean)
{
    Buffer a = makeBuffer("A", {8}, DataType::f32());
    Buffer b = makeBuffer("B", {8}, DataType::f32());
    Buffer t = makeBuffer("T", {8}, DataType::f32(), "global");
    Var i = var("i");
    PrimFunc func = makeFunc(
        "init_then_read", {a, b},
        serial(i, 8,
               seq({bufferStore(t, bufferLoad(a, {i}), {i}),
                    bufferStore(b, bufferLoad(t, {i}), {i})})));

    AnalysisReport report = analysis::lintFunc(func);
    EXPECT_EQ(countDiagnostics(report, DiagKind::kUseBeforeInit), 0)
        << report.summary();
}

TEST(DataflowLintTest, LoopCarriedAccumulatorNotFlagged)
{
    // T[0] = T[0] + A[i]: the store's later iterations feed the read,
    // so the loop-carried edge counts as initialization (conservative
    // about iteration 0 by design — the lint stays quiet).
    Buffer a = makeBuffer("A", {8}, DataType::f32());
    Buffer t = makeBuffer("T", {1}, DataType::f32(), "global");
    Var i = var("i");
    PrimFunc func = makeFunc(
        "accum", {a},
        serial(i, 8,
               bufferStore(t,
                           bufferLoad(t, {intImm(0)}) +
                               bufferLoad(a, {i}),
                           {intImm(0)})));

    AnalysisReport report = analysis::lintFunc(func);
    EXPECT_EQ(countDiagnostics(report, DiagKind::kUseBeforeInit), 0)
        << report.summary();
}

// --- TIR-L002 dead stores ------------------------------------------------

TEST(DataflowLintTest, DeadStoreIsWarning)
{
    // T is written and never read: removable for free.
    Buffer a = makeBuffer("A", {8}, DataType::f32());
    Buffer b = makeBuffer("B", {8}, DataType::f32());
    Buffer t = makeBuffer("T", {8}, DataType::f32(), "global");
    Var i = var("i");
    PrimFunc func = makeFunc(
        "dead_store", {a, b},
        serial(i, 8,
               seq({bufferStore(b, bufferLoad(a, {i}), {i}),
                    bufferStore(t, bufferLoad(a, {i}), {i})})));

    AnalysisReport report = analysis::lintFunc(func);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(countDiagnostics(report, DiagKind::kDeadStore), 1)
        << report.summary();
    EXPECT_NE(report.summary().find("TIR-L002"), std::string::npos)
        << report.summary();

    DataflowInfo info = analysis::computeDataflow(func);
    ASSERT_EQ(info.dead_stores.size(), 1u);
    EXPECT_EQ(info.dead_stores[0]->buffer->name, "T");
}

TEST(DataflowLintTest, ParameterStoresAreNeverDead)
{
    // B is a parameter: its final contents are the function's output,
    // so an unread store to it is live by definition.
    Buffer a = makeBuffer("A", {8}, DataType::f32());
    Buffer b = makeBuffer("B", {8}, DataType::f32());
    Var i = var("i");
    PrimFunc func = makeFunc(
        "param_store", {a, b},
        serial(i, 8, bufferStore(b, bufferLoad(a, {i}), {i})));

    EXPECT_EQ(countDiagnostics(analysis::lintFunc(func),
                               DiagKind::kDeadStore),
              0);
    EXPECT_TRUE(analysis::computeDataflow(func).dead_stores.empty());
}

TEST(DataflowLintTest, OpaqueUseKeepsStoreAlive)
{
    // An intrinsic taking T's pointer has an unknown footprint: it
    // must count as a read, keeping the store alive.
    Buffer a = makeBuffer("A", {8}, DataType::f32());
    Buffer t = makeBuffer("T", {8}, DataType::f32(), "global");
    Var i = var("i");
    PrimFunc func = makeFunc(
        "opaque_use", {a},
        seq({serial(i, 8,
                    bufferStore(t, bufferLoad(a, {i}), {i})),
             evaluate(call(DataType::handle(), "mystery.op",
                           {bufferPtr(t, {intImm(0)})}))}));

    EXPECT_EQ(countDiagnostics(analysis::lintFunc(func),
                               DiagKind::kDeadStore),
              0);
    EXPECT_TRUE(analysis::computeDataflow(func).dead_stores.empty());
}

// --- TIR-L003 redundant barriers -----------------------------------------

/** Per-thread staging: S[tx] = A[tx]; barrier; B[tx] = S[tx]. The
 *  footprints are thread-disjoint, so the barrier orders nothing. */
PrimFunc
perThreadStaging()
{
    Buffer a = makeBuffer("A", {8}, DataType::f32());
    Buffer b = makeBuffer("B", {8}, DataType::f32());
    Buffer s = makeBuffer("S", {8}, DataType::f32(), "shared");
    Var tx = var("tx");
    Stmt body = seq({
        bufferStore(s, bufferLoad(a, {tx}), {tx}),
        storageSync(),
        bufferStore(b, bufferLoad(s, {tx}), {tx}),
    });
    return makeFunc("staging_disjoint", {a, b},
                    launch(tx, 8, std::move(body)));
}

/** Cross-thread staging: S[tx] = A[tx]; barrier; B[tx] = S[7-tx].
 *  Thread tx reads thread 7-tx's element — the barrier is the only
 *  thing ordering that RAW and must survive. */
PrimFunc
crossThreadStaging()
{
    Buffer a = makeBuffer("A", {8}, DataType::f32());
    Buffer b = makeBuffer("B", {8}, DataType::f32());
    Buffer s = makeBuffer("S", {8}, DataType::f32(), "shared");
    Var tx = var("tx");
    Stmt body = seq({
        bufferStore(s, bufferLoad(a, {tx}), {tx}),
        storageSync(),
        bufferStore(b, bufferLoad(s, {intImm(7) - tx}), {tx}),
    });
    return makeFunc("staging_reversal", {a, b},
                    launch(tx, 8, std::move(body)));
}

TEST(DataflowLintTest, RedundantBarrierIsFlagged)
{
    PrimFunc func = perThreadStaging();
    AnalysisReport report = analysis::lintFunc(func);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(countDiagnostics(report, DiagKind::kRedundantSync), 1)
        << report.summary();
    EXPECT_NE(report.summary().find("TIR-L003"), std::string::npos)
        << report.summary();

    DataflowInfo info = analysis::computeDataflow(func);
    ASSERT_EQ(info.syncs.size(), 1u);
    EXPECT_TRUE(info.syncs[0].elidable);
    EXPECT_TRUE(info.syncs[0].protected_pairs.empty());
}

TEST(DataflowLintTest, LoadBearingBarrierIsNotFlagged)
{
    PrimFunc func = crossThreadStaging();
    EXPECT_EQ(countDiagnostics(analysis::lintFunc(func),
                               DiagKind::kRedundantSync),
              0);
    DataflowInfo info = analysis::computeDataflow(func);
    ASSERT_EQ(info.syncs.size(), 1u);
    EXPECT_FALSE(info.syncs[0].elidable);
    EXPECT_FALSE(info.syncs[0].protected_pairs.empty());
}

TEST(DataflowLintTest, LoopCarriedBarrierIsKept)
{
    // for k: S[tx] = A[tx,k]; barrier; B[k,tx] = S[7-tx]. Besides the
    // in-iteration RAW, iteration k+1's overwrite of S[tx] races the
    // iteration-k read of S[7-tx]; the barrier orders both.
    Buffer a = makeBuffer("A", {8, 4}, DataType::f32());
    Buffer b = makeBuffer("B", {4, 8}, DataType::f32());
    Buffer s = makeBuffer("S", {8}, DataType::f32(), "shared");
    Var tx = var("tx");
    Var k = var("k");
    Stmt body = seq({
        bufferStore(s, bufferLoad(a, {tx, k}), {tx}),
        storageSync(),
        bufferStore(b, bufferLoad(s, {intImm(7) - tx}), {k, tx}),
    });
    PrimFunc func =
        makeFunc("staging_carried", {a, b},
                 launch(tx, 8, serial(k, 4, std::move(body))));

    DataflowInfo info = analysis::computeDataflow(func);
    ASSERT_EQ(info.syncs.size(), 1u);
    EXPECT_FALSE(info.syncs[0].elidable);
}

TEST(DataflowLintTest, GreedyElisionKeepsFirstOfDuplicatePair)
{
    // write; barrier; barrier; read — one barrier suffices for the
    // pair. The elision scan runs left to right with not-yet-visited
    // barriers still counted as kept, so the *first* duplicate is the
    // one dropped and the final barrier before the read survives.
    Buffer a = makeBuffer("A", {8}, DataType::f32());
    Buffer b = makeBuffer("B", {8}, DataType::f32());
    Buffer s = makeBuffer("S", {8}, DataType::f32(), "shared");
    Var tx = var("tx");
    Stmt body = seq({
        bufferStore(s, bufferLoad(a, {tx}), {tx}),
        storageSync(),
        storageSync(),
        bufferStore(b, bufferLoad(s, {intImm(7) - tx}), {tx}),
    });
    PrimFunc func = makeFunc("double_barrier", {a, b},
                             launch(tx, 8, std::move(body)));

    DataflowInfo info = analysis::computeDataflow(func);
    ASSERT_EQ(info.syncs.size(), 2u);
    EXPECT_TRUE(info.syncs[0].elidable);
    EXPECT_FALSE(info.syncs[1].elidable);

    LowerStats stats;
    PrimFunc optimized = elideRedundantSync(func, &stats);
    EXPECT_EQ(stats.syncs_elided, 1);
    EXPECT_EQ(countSyncs(optimized), 1);
}

// --- Optimization pass semantics -----------------------------------------

/** T1 <- A, T2 <- T1, B <- A*A with T2 unread: the cascade dies
 *  back-to-front over two fixpoint rounds. */
PrimFunc
deadStoreCascade(int64_t n)
{
    Buffer a = makeBuffer("A", {n}, DataType::f32());
    Buffer b = makeBuffer("B", {n}, DataType::f32());
    Buffer t1 = makeBuffer("T1", {n}, DataType::f32(), "global");
    Buffer t2 = makeBuffer("T2", {n}, DataType::f32(), "global");
    Var i = var("i");
    Stmt body = seq({
        bufferStore(t1,
                    bufferLoad(a, {i}) * floatImm(2.0, DataType::f32()),
                    {i}),
        bufferStore(t2,
                    bufferLoad(t1, {i}) + floatImm(1.0, DataType::f32()),
                    {i}),
        bufferStore(b, bufferLoad(a, {i}) * bufferLoad(a, {i}), {i}),
    });
    return makeFunc("dse_cascade", {a, b},
                    serial(i, n, std::move(body)));
}

TEST(OptimizePassTest, DeadStoreCascadeDiesOverTwoRounds)
{
    PrimFunc func = deadStoreCascade(16);
    ASSERT_EQ(countStores(func), 3);
    // Round one only sees T2 dead (T1 still feeds T2's store).
    EXPECT_EQ(analysis::computeDataflow(func).dead_stores.size(), 1u);

    LowerStats stats;
    PrimFunc optimized = eliminateDeadStores(func, &stats);
    EXPECT_EQ(stats.stores_eliminated, 2);
    EXPECT_EQ(countStores(optimized), 1);
    EXPECT_TRUE(
        analysis::computeDataflow(optimized).dead_stores.empty());
}

TEST(OptimizePassTest, ElisionLeavesLoadBearingFunctionUntouched)
{
    PrimFunc func = crossThreadStaging();
    LowerStats stats;
    PrimFunc optimized = elideRedundantSync(func, &stats);
    EXPECT_EQ(stats.syncs_elided, 0);
    EXPECT_EQ(countSyncs(optimized), 1);
    // Nothing removed: structural sharing returns the same function.
    EXPECT_EQ(optimized.get(), func.get());
}

TEST(OptimizePassTest, ElisionRemovesRedundantBarrier)
{
    PrimFunc func = perThreadStaging();
    LowerStats stats;
    PrimFunc optimized = elideRedundantSync(func, &stats);
    EXPECT_EQ(stats.syncs_elided, 1);
    EXPECT_EQ(countSyncs(optimized), 0);
}

// --- Three-engine differential parity ------------------------------------

/** Run `before` and `after` on identical inputs through the tree
 *  walker, the bytecode VM, and (when a toolchain exists) the native
 *  JIT; every engine must agree bit-exactly on every buffer. */
void
expectThreeEngineParity(const PrimFunc& before, const PrimFunc& after,
                        uint64_t seed)
{
    auto make_inputs = [&](const PrimFunc& f) {
        Rng rng(seed);
        std::vector<runtime::NDArray> arrays;
        for (const Buffer& param : f->params) {
            std::vector<int64_t> shape;
            for (size_t d = 0; d < param->ndim(); ++d) {
                shape.push_back(param->shapeInt(d));
            }
            arrays.emplace_back(param->dtype, shape);
            arrays.back().fillRandom(rng);
        }
        return arrays;
    };
    auto ptrs = [](std::vector<runtime::NDArray>& arrays) {
        std::vector<runtime::NDArray*> p;
        for (runtime::NDArray& a : arrays) p.push_back(&a);
        return p;
    };

    std::vector<runtime::NDArray> ref = make_inputs(before);
    std::vector<runtime::NDArray*> ref_ptrs = ptrs(ref);
    runtime::Interpreter ref_interp;
    ref_interp.run(before, ref_ptrs);

    // Tree walker on the optimized function.
    {
        std::vector<runtime::NDArray> args = make_inputs(after);
        std::vector<runtime::NDArray*> p = ptrs(args);
        runtime::Interpreter interp;
        interp.run(after, p);
        for (size_t i = 0; i < args.size(); ++i) {
            EXPECT_EQ(args[i].maxAbsDiff(ref[i]), 0.0)
                << "interpreter buffer " << i;
        }
    }
    // Bytecode VM on both.
    {
        std::vector<runtime::NDArray> args = make_inputs(after);
        std::vector<runtime::NDArray*> p = ptrs(args);
        runtime::VirtualMachine vm;
        vm.run(runtime::compile(after), p);
        for (size_t i = 0; i < args.size(); ++i) {
            EXPECT_EQ(args[i].maxAbsDiff(ref[i]), 0.0)
                << "vm buffer " << i;
        }
    }
    // Native JIT (skipped without a system compiler, and for
    // functions the native tier cannot express — the C emitter
    // rejects GPU thread bindings).
    std::shared_ptr<const runtime::JitModule> mod =
        runtime::jitAvailable() ? runtime::jitCompile(after) : nullptr;
    if (mod) {
        std::vector<runtime::NDArray> args = make_inputs(after);
        std::vector<runtime::NDArray*> p = ptrs(args);
        mod->run(p);
        for (size_t i = 0; i < args.size(); ++i) {
            EXPECT_EQ(args[i].maxAbsDiff(ref[i]), 0.0)
                << "jit buffer " << i;
        }
    }
}

TEST(OptimizeParityTest, DeadStoreEliminationIsBitExact)
{
    PrimFunc before = deadStoreCascade(64);
    PrimFunc after = eliminateDeadStores(before);
    expectThreeEngineParity(before, after, 11);
}

TEST(OptimizeParityTest, SyncElisionIsBitExact)
{
    PrimFunc before = perThreadStaging();
    PrimFunc after = elideRedundantSync(before);
    expectThreeEngineParity(before, after, 12);
}

/** Staged shared-memory schedule over a workload: bind the two outer
 *  loops, stage one operand of the einsum block through shared memory
 *  at the third loop. Throws FatalError for shapes the primitives
 *  reject (caller skips those). */
PrimFunc
stagedSchedule(const workloads::OpSpec& spec, int read_index,
               uint64_t seed)
{
    Schedule sch(spec.func, seed);
    std::vector<Var> loops = sch.getLoops(spec.einsum_block);
    TIR_CHECK(loops.size() >= 3) << "too few loops to stage";
    sch.bind(loops[0], "blockIdx.x");
    sch.bind(loops[1], "threadIdx.x");
    std::string copy =
        sch.cacheRead(spec.einsum_block, read_index, "shared");
    sch.computeAt(copy, loops[2]);
    return sch.func();
}

TEST(OptimizeParityTest, StagedGmmSchedulesAreBitExact)
{
    workloads::OpSpec spec = workloads::gmm(16, 16, 16);
    for (int read_index : {0, 1}) {
        PrimFunc scheduled = stagedSchedule(spec, read_index, 5);
        LowerOptions base;
        base.insert_storage_sync = true;
        PrimFunc before = lowerWithOptions(scheduled, base);
        LowerOptions opt = base;
        opt.elide_redundant_sync = true;
        opt.eliminate_dead_stores = true;
        PrimFunc after = lowerWithOptions(scheduled, opt);
        expectThreeEngineParity(before, after,
                                100 + static_cast<uint64_t>(read_index));
    }
}

// --- Round-trip property over random staged schedules --------------------

TEST(SyncRoundTripTest, ElisionNeverCreatesMissingSyncErrors)
{
    // Property: for staged schedules across the Table 1 small suite,
    // insertStorageSync followed by elideRedundantSync (a) never
    // introduces a TIR-R002 missing-barrier error the conservative
    // lowering did not already have, and (b) never increases the
    // barrier count.
    int exercised = 0;
    for (uint64_t seed : {3u, 17u}) {
        for (const workloads::OpSpec& spec :
             workloads::gpuSuiteSmall()) {
            PrimFunc scheduled;
            try {
                scheduled = stagedSchedule(
                    spec, static_cast<int>(seed % 2), seed);
            } catch (const FatalError&) {
                continue; // shape/primitive combination not stageable
            }
            PrimFunc lowered = lowerToLoops(scheduled);
            PrimFunc synced = insertStorageSync(lowered);
            PrimFunc elided = elideRedundantSync(synced);
            ++exercised;

            EXPECT_LE(countSyncs(elided), countSyncs(synced))
                << spec.name << " seed " << seed;
            int raw_before = analysis::analyzeFunc(synced).errorCount(
                DiagKind::kRawNoSync);
            int raw_after = analysis::analyzeFunc(elided).errorCount(
                DiagKind::kRawNoSync);
            EXPECT_LE(raw_after, raw_before)
                << spec.name << " seed " << seed << "\n"
                << analysis::analyzeFunc(elided).summary();
        }
    }
    EXPECT_GE(exercised, 4) << "property exercised too few schedules";
}

// --- Search wiring: TuneOptions::lint_filter ------------------------------

TEST(DataflowSearchWiringTest, LintFilterPassesCleanCandidates)
{
    // The lint filter only rejects provable use-before-init errors;
    // sketch-generated schedules never read uninitialized storage, so
    // turning it on must reject nothing and change no outcome — it is
    // a pure gate for hand-written or adversarial schedule sources.
    workloads::OpSpec op = workloads::gmm(32, 32, 32);
    meta::SketchApplier sketch = [](Schedule& sch) {
        std::vector<Var> loops = sch.getLoops("C");
        sch.split(loops[0], sch.samplePerfectTile(loops[0], 2, 8));
        sch.bind(sch.getLoops("C")[0], "threadIdx.x");
    };
    hwsim::GpuDevice gpu;
    meta::TuneOptions options;
    options.population = 4;
    options.generations = 2;
    options.children_per_generation = 8;
    options.measured_per_generation = 3;
    options.seed = 23;
    options.parallelism = 1;

    meta::TuneResult off =
        meta::evolutionarySearch(op.func, sketch, gpu, options);
    options.lint_filter = true;
    meta::TuneResult on =
        meta::evolutionarySearch(op.func, sketch, gpu, options);

    EXPECT_GT(off.trials_measured, 0);
    EXPECT_EQ(on.lint_filtered, 0);
    EXPECT_EQ(off.lint_filtered, 0);
    EXPECT_EQ(on.best_latency_us, off.best_latency_us);
    EXPECT_EQ(on.trials_measured, off.trials_measured);
}

// --- Shared analysis-report cache ----------------------------------------

TEST(AnalysisCacheTest, CachedReportsMatchUncachedByFamily)
{
    // One function with findings in both families, queried through
    // both cached entry points: results must equal the uncached runs
    // (the cache key separates the families — a stored race report
    // must never be returned for a lint query).
    PrimFunc func = perThreadStaging();
    analysis::clearAnalysisCache();

    AnalysisReport analyze_cached = analysis::analyzeFuncCached(func);
    AnalysisReport lint_cached = analysis::lintFuncCached(func);
    EXPECT_EQ(analyze_cached.summary(),
              analysis::analyzeFunc(func).summary());
    EXPECT_EQ(lint_cached.summary(),
              analysis::lintFunc(func).summary());

    // Second round hits the cache; contents must be identical.
    EXPECT_EQ(analysis::analyzeFuncCached(func).summary(),
              analyze_cached.summary());
    EXPECT_EQ(analysis::lintFuncCached(func).summary(),
              lint_cached.summary());

    // And again after a wholesale clear (recomputed, same answer).
    analysis::clearAnalysisCache();
    EXPECT_EQ(analysis::lintFuncCached(func).summary(),
              lint_cached.summary());
}

} // namespace
} // namespace tir
