/**
 * @file
 * Unit tests for the IR core: construction, printing, structural
 * equality, substitution and collectors.
 */
#include <gtest/gtest.h>

#include "ir/printer.h"
#include "ir/structural_equal.h"
#include "ir/transform.h"

namespace tir {
namespace {

TEST(DataTypeTest, RoundTripsThroughString)
{
    EXPECT_EQ(DataType::f32().str(), "float32");
    EXPECT_EQ(DataType::i8().str(), "int8");
    EXPECT_EQ(DataType::parse("float16"), DataType::f16());
    EXPECT_EQ(DataType::parse("uint8"), DataType::u8());
    EXPECT_EQ(DataType::parse("bool"), DataType::boolean());
    EXPECT_EQ(DataType::f16().bytes(), 2);
    EXPECT_EQ(DataType::i8().bytes(), 1);
}

TEST(DataTypeTest, RejectsGarbage)
{
    EXPECT_THROW(DataType::parse("floof32"), FatalError);
}

TEST(ExprTest, BuildsArithmetic)
{
    Var x = var("x");
    Expr e = Expr(x) * 4 + 3;
    EXPECT_EQ(e->kind, ExprKind::kAdd);
    EXPECT_EQ(exprToString(e), "((x * 4) + 3)");
}

TEST(ExprTest, ComparisonsAreBoolean)
{
    Var x = var("x");
    EXPECT_EQ(lt(x, intImm(5))->dtype, DataType::boolean());
    EXPECT_EQ(land(lt(x, intImm(5)), ge(x, intImm(0)))->dtype,
              DataType::boolean());
}

TEST(ExprTest, ConstIntDetection)
{
    int64_t v = 0;
    EXPECT_TRUE(isConstInt(intImm(42), &v));
    EXPECT_EQ(v, 42);
    EXPECT_FALSE(isConstInt(var("x"), &v));
    EXPECT_EQ(constIntOr(intImm(7), -1), 7);
    EXPECT_EQ(constIntOr(var("x"), -1), -1);
}

TEST(BufferTest, ShapeQueries)
{
    Buffer a = makeBuffer("A", {4, 8}, DataType::f16(), "shared");
    EXPECT_EQ(a->ndim(), 2u);
    EXPECT_EQ(a->numel(), 32);
    EXPECT_EQ(a->shapeInt(1), 8);
    EXPECT_EQ(a->scope, "shared");
}

TEST(BufferTest, LoadArityChecked)
{
    Buffer a = makeBuffer("A", {4, 8});
    EXPECT_THROW(bufferLoad(a, {intImm(0)}), InternalError);
}

TEST(StmtTest, SeqFlattensAndCollapses)
{
    Buffer a = makeBuffer("A", {4});
    Stmt s1 = bufferStore(a, floatImm(1), {intImm(0)});
    Stmt s2 = bufferStore(a, floatImm(2), {intImm(1)});
    Stmt nested = seq({s1, seq({s2, s1})});
    ASSERT_EQ(nested->kind, StmtKind::kSeq);
    EXPECT_EQ(static_cast<const SeqStmtNode&>(*nested).seq.size(), 3u);
    EXPECT_EQ(seq({s1}), s1);
}

TEST(StmtTest, BlockRealizeArityChecked)
{
    Buffer a = makeBuffer("A", {4});
    Var v = var("v");
    BlockPtr block =
        makeBlock("b", {IterVar(v, Range::fromExtent(4),
                                IterType::kSpatial)},
                  {}, {}, bufferStore(a, floatImm(0), {Expr(v)}));
    EXPECT_THROW(blockRealize({}, intImm(1, DataType::boolean()), block),
                 InternalError);
}

TEST(StructuralEqualTest, AlphaEquivalentExprs)
{
    Var x = var("x");
    Var y = var("y");
    EXPECT_TRUE(structuralEqual(Expr(x) + 1, Expr(y) + 1));
    EXPECT_FALSE(structuralEqual(Expr(x) + 1, Expr(y) + 2));
    EXPECT_FALSE(structuralEqual(Expr(x) + 1, Expr(y) * 1));
    // Same var must map consistently.
    EXPECT_TRUE(structuralEqual(Expr(x) + x, Expr(y) + y));
    Var z = var("z");
    EXPECT_FALSE(structuralEqual(Expr(x) + x, Expr(y) + z));
}

TEST(StructuralEqualTest, DeepEqualIsStrictOnVars)
{
    Var x = var("x");
    Var y = var("y");
    EXPECT_TRUE(exprDeepEqual(Expr(x) + 1, Expr(x) + 1));
    EXPECT_FALSE(exprDeepEqual(Expr(x) + 1, Expr(y) + 1));
}

TEST(SubstituteTest, ReplacesVariables)
{
    Var x = var("x");
    Var y = var("y");
    VarMap vmap;
    vmap[x.get()] = Expr(y) * 2;
    Expr result = substitute(Expr(x) + 1, vmap);
    EXPECT_EQ(exprToString(result), "((y * 2) + 1)");
}

TEST(SubstituteTest, RemapsBuffers)
{
    Buffer a = makeBuffer("A", {4});
    Buffer b = makeBuffer("B", {4});
    BufferMap bmap;
    bmap[a.get()] = b;
    Stmt store = bufferStore(a, bufferLoad(a, {intImm(1)}), {intImm(0)});
    Stmt result = substituteBuffers(store, bmap);
    const auto& n = static_cast<const BufferStoreNode&>(*result);
    EXPECT_EQ(n.buffer, b);
    EXPECT_EQ(static_cast<const BufferLoadNode&>(*n.value).buffer, b);
}

TEST(CollectorTest, FindsVarsAndBlocks)
{
    Var x = var("x");
    Var y = var("y");
    Expr e = Expr(x) * 2 + y;
    auto vars = collectVars(e);
    EXPECT_EQ(vars.size(), 2u);
    EXPECT_TRUE(usesVar(e, x.get()));
    EXPECT_FALSE(usesVar(Expr(x) + 1, y.get()));
}

TEST(FreshCopyTest, GivesNewIdentities)
{
    Buffer a = makeBuffer("A", {4});
    Var i = var("i");
    Stmt loop = makeFor(i, intImm(0), intImm(4),
                        bufferStore(a, cast(DataType::f32(), Expr(i)),
                                    {Expr(i)}));
    Stmt copy = copyWithFreshVars(loop, "_copy");
    const auto& original = static_cast<const ForNode&>(*loop);
    const auto& copied = static_cast<const ForNode&>(*copy);
    EXPECT_NE(original.loop_var, copied.loop_var);
    EXPECT_EQ(copied.loop_var->name, "i_copy");
    // Body references the fresh var, not the old one.
    const auto& store = static_cast<const BufferStoreNode&>(*copied.body);
    EXPECT_TRUE(usesVar(store.indices[0], copied.loop_var.get()));
    EXPECT_FALSE(usesVar(store.indices[0], original.loop_var.get()));
}

TEST(PrinterTest, PrintsLoopNestAndBlock)
{
    Buffer a = makeBuffer("A", {8});
    Buffer b = makeBuffer("B", {8});
    Var i = var("i");
    Var vi = var("vi");
    BlockPtr block = makeBlock(
        "copy",
        {IterVar(vi, Range::fromExtent(8), IterType::kSpatial)},
        {BufferRegion(a, {Range(Expr(vi), intImm(1))})},
        {BufferRegion(b, {Range(Expr(vi), intImm(1))})},
        bufferStore(b, bufferLoad(a, {Expr(vi)}), {Expr(vi)}));
    Stmt realize = blockRealize({Expr(i)},
                                intImm(1, DataType::boolean()), block);
    Stmt loop = makeFor(i, intImm(0), intImm(8), realize);
    PrimFunc f = makeFunc("main", {a, b}, makeRootBlock(loop));
    std::string text = funcToString(f);
    EXPECT_NE(text.find("def main"), std::string::npos);
    EXPECT_NE(text.find("for i in range(8):"), std::string::npos);
    EXPECT_NE(text.find("with block(\"copy\"):"), std::string::npos);
    EXPECT_NE(text.find("reads A[vi]"), std::string::npos);
    EXPECT_NE(text.find("writes B[vi]"), std::string::npos);
}

TEST(IRModuleTest, LookupAndUpdate)
{
    Buffer a = makeBuffer("A", {4});
    PrimFunc f = makeFunc("f", {a},
                          makeRootBlock(bufferStore(a, floatImm(0),
                                                    {intImm(0)})));
    IRModule mod;
    mod.update(f);
    EXPECT_EQ(mod.lookup("f"), f);
    EXPECT_THROW(mod.lookup("missing"), FatalError);
}

} // namespace
} // namespace tir
