/**
 * @file
 * Tests for the tensor-expression builder and the functional interpreter:
 * generated programs must compute the same values as straightforward
 * reference loops.
 */
#include <gtest/gtest.h>

#include "ir/printer.h"
#include "runtime/interpreter.h"
#include "te/te.h"

namespace tir {
namespace {

using runtime::Interpreter;
using runtime::NDArray;

PrimFunc
buildMatmul(int64_t n, int64_t m, int64_t k)
{
    te::Builder builder;
    Buffer a = builder.placeholder("A", {n, k});
    Buffer b = builder.placeholder("B", {k, m});
    Buffer c = builder.sumReduce(
        "C", {n, m}, {k},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return bufferLoad(a, {s[0], r[0]}) *
                   bufferLoad(b, {r[0], s[1]});
        });
    return builder.build("matmul", {c});
}

TEST(TeBuilderTest, MatmulStructure)
{
    PrimFunc f = buildMatmul(8, 8, 8);
    EXPECT_EQ(f->params.size(), 3u);
    std::string text = funcToString(f);
    EXPECT_NE(text.find("with block(\"C\"):"), std::string::npos);
    EXPECT_NE(text.find("reduce("), std::string::npos);
    EXPECT_NE(text.find("with init():"), std::string::npos);
}

TEST(TeBuilderTest, SignatureRegionsDetected)
{
    PrimFunc f = buildMatmul(8, 8, 8);
    std::string text = funcToString(f);
    // The C block reads point regions of A and B and writes C.
    EXPECT_NE(text.find("reads A["), std::string::npos);
    EXPECT_NE(text.find("reads B["), std::string::npos);
    EXPECT_NE(text.find("writes C["), std::string::npos);
}

TEST(InterpreterTest, MatmulMatchesReference)
{
    const int64_t n = 6;
    const int64_t m = 5;
    const int64_t k = 7;
    PrimFunc f = buildMatmul(n, m, k);

    Rng rng(7);
    NDArray a(DataType::f32(), {n, k});
    NDArray b(DataType::f32(), {k, m});
    NDArray c(DataType::f32(), {n, m});
    a.fillRandom(rng);
    b.fillRandom(rng);

    Interpreter interp;
    interp.run(f, {&a, &b, &c});

    for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < m; ++j) {
            double expect = 0;
            for (int64_t kk = 0; kk < k; ++kk) {
                expect += a.at(i * k + kk) * b.at(kk * m + j);
            }
            EXPECT_NEAR(c.at(i * m + j), expect, 1e-9);
        }
    }
}

TEST(InterpreterTest, FusedAddExpMatchesReference)
{
    // The paper's Figure 4 program: C = exp(A + 1).
    const int64_t n = 16;
    te::Builder builder;
    Buffer a = builder.placeholder("A", {n, n});
    Buffer b = builder.compute(
        "B", {n, n},
        [&](const std::vector<Var>& v) {
            return bufferLoad(a, {v[0], v[1]}) + floatImm(1.0);
        });
    Buffer c = builder.compute(
        "C", {n, n},
        [&](const std::vector<Var>& v) {
            return call(DataType::f32(), "exp",
                        {bufferLoad(b, {v[0], v[1]})});
        });
    PrimFunc f = builder.build("fuse_add_exp", {c});
    // B is an intermediate: allocated in the root block, not a parameter.
    EXPECT_EQ(f->params.size(), 2u);

    Rng rng(3);
    NDArray a_data(DataType::f32(), {n, n});
    NDArray c_data(DataType::f32(), {n, n});
    a_data.fillRandom(rng);
    Interpreter interp;
    interp.run(f, {&a_data, &c_data});
    for (int64_t i = 0; i < n * n; ++i) {
        EXPECT_NEAR(c_data.at(i), std::exp(a_data.at(i) + 1.0), 1e-9);
    }
}

TEST(InterpreterTest, MaxReduceMatchesReference)
{
    const int64_t n = 4;
    const int64_t k = 9;
    te::Builder builder;
    Buffer a = builder.placeholder("A", {n, k});
    Buffer c = builder.maxReduce(
        "C", {n}, {k},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return bufferLoad(a, {s[0], r[0]});
        });
    PrimFunc f = builder.build("rowmax", {c});

    Rng rng(11);
    NDArray a_data(DataType::f32(), {n, k});
    NDArray c_data(DataType::f32(), {n});
    a_data.fillRandom(rng);
    Interpreter interp;
    interp.run(f, {&a_data, &c_data});
    for (int64_t i = 0; i < n; ++i) {
        double expect = -1e30;
        for (int64_t j = 0; j < k; ++j) {
            expect = std::max(expect, a_data.at(i * k + j));
        }
        EXPECT_NEAR(c_data.at(i), expect, 1e-9);
    }
}

TEST(InterpreterTest, IntegerComputeStaysExact)
{
    const int64_t n = 8;
    te::Builder builder;
    Buffer a = builder.placeholder("A", {n}, DataType::i8());
    Buffer b = builder.placeholder("B", {n}, DataType::i8());
    Buffer c = builder.sumReduce(
        "C", {1}, {n},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return cast(DataType::i32(), bufferLoad(a, {r[0]})) *
                   cast(DataType::i32(), bufferLoad(b, {r[0]}));
        },
        DataType::i32());
    PrimFunc f = builder.build("dot_i8", {c});

    NDArray a_data(DataType::i8(), {n});
    NDArray b_data(DataType::i8(), {n});
    NDArray c_data(DataType::i32(), {1});
    int64_t expect = 0;
    for (int64_t i = 0; i < n; ++i) {
        a_data.at(i) = static_cast<double>(i - 4);
        b_data.at(i) = static_cast<double>(2 * i - 7);
        expect += (i - 4) * (2 * i - 7);
    }
    Interpreter interp;
    interp.run(f, {&a_data, &b_data, &c_data});
    EXPECT_EQ(static_cast<int64_t>(c_data.at(0)), expect);
}

TEST(InterpreterTest, ChecksArgumentCount)
{
    PrimFunc f = buildMatmul(2, 2, 2);
    NDArray a(DataType::f32(), {2, 2});
    Interpreter interp;
    EXPECT_THROW(interp.run(f, {&a}), FatalError);
}

TEST(InterpreterTest, ThreadBindingLoopsExecuteSequentially)
{
    // A thread-binding loop must still produce correct results when
    // interpreted on the host.
    Buffer a = makeBuffer("A", {32});
    Var tx = var("tx");
    Var v = var("v");
    BlockPtr block = makeBlock(
        "write", {IterVar(v, Range::fromExtent(32), IterType::kSpatial)},
        {}, {BufferRegion(a, {Range(Expr(v), intImm(1))})},
        bufferStore(a, cast(DataType::f32(), Expr(v) * 2), {Expr(v)}));
    Stmt realize = blockRealize({Expr(tx)},
                                intImm(1, DataType::boolean()), block);
    Stmt loop = makeFor(tx, intImm(0), intImm(32), realize,
                        ForKind::kThreadBinding, "threadIdx.x");
    PrimFunc f = makeFunc("kernel", {a}, makeRootBlock(loop));
    NDArray data(DataType::f32(), {32});
    Interpreter interp;
    interp.run(f, {&data});
    for (int64_t i = 0; i < 32; ++i) EXPECT_EQ(data.at(i), 2.0 * i);
}

} // namespace
} // namespace tir
