/**
 * @file
 * Unit tests for the arithmetic layer: simplifier, interval analysis,
 * symbolic region detection, and quasi-affine iterator-map validation.
 */
#include <gtest/gtest.h>

#include "arith/analyzer.h"
#include "arith/iter_map.h"
#include "arith/region.h"
#include "ir/printer.h"

namespace tir {
namespace arith {
namespace {

TEST(SimplifyTest, ConstantFolding)
{
    Analyzer an;
    EXPECT_EQ(constIntOr(an.simplify(intImm(2) + intImm(3)), -1), 5);
    EXPECT_EQ(constIntOr(an.simplify(intImm(7) * intImm(6)), -1), 42);
    EXPECT_EQ(constIntOr(an.simplify(floordiv(intImm(-7), intImm(2))), 0),
              -4);
    EXPECT_EQ(constIntOr(an.simplify(floormod(intImm(-7), intImm(2))), -1),
              1);
}

TEST(SimplifyTest, Identities)
{
    Analyzer an;
    Var x = var("x");
    EXPECT_EQ(an.simplify(Expr(x) + 0), Expr(x));
    EXPECT_EQ(an.simplify(Expr(x) * 1), Expr(x));
    EXPECT_EQ(constIntOr(an.simplify(Expr(x) * 0), -1), 0);
    EXPECT_EQ(constIntOr(an.simplify(Expr(x) - x), -1), 0);
    EXPECT_EQ(exprToString(an.simplify((Expr(x) + 2) + 3)), "(x + 5)");
    EXPECT_EQ(exprToString(an.simplify((Expr(x) * 2) * 3)), "(x * 6)");
}

TEST(SimplifyTest, DivModOfAffineSums)
{
    Analyzer an;
    Var a = var("a");
    Var b = var("b");
    an.bind(b, Range::fromExtent(8));
    // floordiv(a*8 + b, 8) == a because 0 <= b < 8
    Expr e = floordiv(Expr(a) * 8 + b, 8);
    EXPECT_EQ(an.simplify(e), Expr(a));
    // floormod(a*8 + b, 8) == b
    EXPECT_EQ(an.simplify(floormod(Expr(a) * 8 + b, 8)), Expr(b));
    // Partial divisibility: floordiv(a*16 + b, 8) = a*2 + floordiv(b, 8)
    Expr partial = an.simplify(floordiv(Expr(a) * 16 + b, 8));
    EXPECT_EQ(exprToString(partial), "(a * 2)"); // fd(b,8)==0 since b<8
}

TEST(SimplifyTest, NestedDivMod)
{
    Analyzer an;
    Var x = var("x");
    an.bind(x, Range::fromExtent(256));
    EXPECT_EQ(exprToString(an.simplify(floordiv(floordiv(x, 4), 8))),
              "floordiv(x, 32)");
    EXPECT_EQ(exprToString(an.simplify(floormod(floormod(x, 16), 4))),
              "floormod(x, 4)");
}

TEST(SimplifyTest, BoundBasedComparisons)
{
    Analyzer an;
    Var x = var("x");
    an.bind(x, Range::fromExtent(16));
    EXPECT_EQ(constIntOr(an.simplify(lt(x, intImm(16))), -1), 1);
    EXPECT_EQ(constIntOr(an.simplify(lt(x, intImm(10))), -1), -1);
    EXPECT_EQ(constIntOr(an.simplify(ge(x, intImm(0))), -1), 1);
    EXPECT_EQ(constIntOr(an.simplify(minExpr(x, intImm(20))), -1), -1);
    EXPECT_EQ(an.simplify(minExpr(x, intImm(20))), Expr(x));
}

TEST(SimplifyTest, BooleanShortCircuits)
{
    Analyzer an;
    Var x = var("x");
    Expr t = intImm(1, DataType::boolean());
    Expr f = intImm(0, DataType::boolean());
    EXPECT_EQ(exprToString(an.simplify(land(t, lt(x, intImm(3))))),
              exprToString(an.simplify(lt(x, intImm(3)))));
    EXPECT_EQ(constIntOr(an.simplify(land(f, lt(x, intImm(3)))), -1), 0);
    EXPECT_EQ(constIntOr(an.simplify(lor(t, lt(x, intImm(3)))), -1), 1);
}

TEST(IntervalTest, ArithmeticAndSaturation)
{
    Interval a(2, 5);
    Interval b(-1, 3);
    Interval sum = a + b;
    EXPECT_EQ(sum.lo, 1);
    EXPECT_EQ(sum.hi, 8);
    Interval prod = a * b;
    EXPECT_EQ(prod.lo, -5);
    EXPECT_EQ(prod.hi, 15);
    Interval top = Interval::everything();
    EXPECT_FALSE((top + a).bounded());
}

TEST(IntervalTest, EvalOverEnvironment)
{
    Analyzer an;
    Var i = var("i");
    Var j = var("j");
    an.bind(i, Range::fromExtent(8));
    an.bind(j, Range::fromExtent(4));
    Interval r = an.evalInterval(Expr(i) * 4 + j);
    EXPECT_EQ(r.lo, 0);
    EXPECT_EQ(r.hi, 31);
    Interval m = an.evalInterval(floormod(Expr(i), intImm(3)));
    EXPECT_EQ(m.lo, 0);
    EXPECT_EQ(m.hi, 2);
}

TEST(RegionTest, DetectsLoopWidenedRegions)
{
    Buffer a = makeBuffer("A", {64, 64});
    Buffer c = makeBuffer("C", {64});
    Var i = var("i");
    Var k = var("k");
    // for k in 16: C[i] += A[i, k*4]
    Stmt body = bufferStore(
        c, bufferLoad(c, {Expr(i)}) + bufferLoad(a, {Expr(i),
                                                     Expr(k) * 4}),
        {Expr(i)});
    Stmt loop = makeFor(k, intImm(0), intImm(16), body);
    AccessRegions regions = detectRegions(loop, {});
    ASSERT_EQ(regions.writes.size(), 1u);
    EXPECT_EQ(regions.writes[0].buffer, c);
    // A's second dim: k*4 over k in [0,16) -> [0, 61) extent 61.
    const BufferRegion* a_region = nullptr;
    for (const auto& r : regions.reads) {
        if (r.buffer == a) a_region = &r;
    }
    ASSERT_NE(a_region, nullptr);
    EXPECT_EQ(exprToString(a_region->region[0].min), "i");
    EXPECT_EQ(constIntOr(a_region->region[0].extent, -1), 1);
    EXPECT_EQ(constIntOr(a_region->region[1].min, -1), 0);
    EXPECT_EQ(constIntOr(a_region->region[1].extent, -1), 61);
}

TEST(RegionTest, SummarizesNestedBlockBySignature)
{
    Buffer a = makeBuffer("A", {32, 32});
    Buffer b = makeBuffer("B", {32, 32});
    Var vi = var("vi");
    // Block with signature read A[vi*4 : vi*4+4] over full second dim.
    BlockPtr block = makeBlock(
        "inner",
        {IterVar(vi, Range::fromExtent(8), IterType::kSpatial)},
        {BufferRegion(a, {Range(Expr(vi) * 4, intImm(4)),
                          Range(intImm(0), intImm(32))})},
        {BufferRegion(b, {Range(Expr(vi) * 4, intImm(4)),
                          Range(intImm(0), intImm(32))})},
        evaluate(call(DataType::handle(), "opaque", {})));
    Var io = var("io");
    Stmt realize = blockRealize({Expr(io)},
                                intImm(1, DataType::boolean()), block);
    Stmt loop = makeFor(io, intImm(0), intImm(8), realize);
    AccessRegions regions = detectRegions(loop, {});
    ASSERT_EQ(regions.reads.size(), 1u);
    EXPECT_EQ(constIntOr(regions.reads[0].region[0].min, -1), 0);
    EXPECT_EQ(constIntOr(regions.reads[0].region[0].extent, -1), 32);
}

TEST(RegionTest, CoverCheck)
{
    Analyzer an;
    Buffer a = makeBuffer("A", {64});
    Var i = var("i");
    BufferRegion big(a, {Range(Expr(i) * 8, intImm(8))});
    BufferRegion small(a, {Range(Expr(i) * 8 + 2, intImm(4))});
    EXPECT_TRUE(regionCovers(big, small, an));
    EXPECT_FALSE(regionCovers(small, big, an));
    EXPECT_TRUE(regionCovers(big, big, an));
}

TEST(RegionTest, UnionHull)
{
    Analyzer an;
    Buffer a = makeBuffer("A", {64});
    BufferRegion r1(a, {Range(intImm(0), intImm(8))});
    BufferRegion r2(a, {Range(intImm(16), intImm(8))});
    BufferRegion u = regionUnion(r1, r2, an);
    EXPECT_EQ(constIntOr(u.region[0].min, -1), 0);
    EXPECT_EQ(constIntOr(u.region[0].extent, -1), 24);
}

// --- Iterator-map validation (the paper's §3.3 examples) ----------------

class IterMapTest : public ::testing::Test
{
  protected:
    DomMap
    doms(std::initializer_list<std::pair<Var, int64_t>> entries)
    {
        DomMap result;
        for (const auto& [v, extent] : entries) {
            result[v.get()] = Range::fromExtent(extent);
        }
        return result;
    }
};

TEST_F(IterMapTest, PlainVarIsAChain)
{
    Var i = var("i");
    IterChain chain = parseIterChain(i, doms({{i, 16}}));
    ASSERT_TRUE(chain.valid) << chain.error;
    EXPECT_EQ(chain.extent, 16);
    EXPECT_EQ(chain.base, 0);
}

TEST_F(IterMapTest, SplitPatternIsAChain)
{
    Var io = var("io");
    Var ii = var("ii");
    IterChain chain =
        parseIterChain(Expr(io) * 4 + ii, doms({{io, 8}, {ii, 4}}));
    ASSERT_TRUE(chain.valid) << chain.error;
    EXPECT_EQ(chain.extent, 32);
}

TEST_F(IterMapTest, FusePatternIsAChain)
{
    Var f = var("f");
    DomMap d = doms({{f, 64}});
    IterChain hi = parseIterChain(floordiv(Expr(f), 8), d);
    IterChain lo = parseIterChain(floormod(Expr(f), 8), d);
    ASSERT_TRUE(hi.valid) << hi.error;
    ASSERT_TRUE(lo.valid) << lo.error;
    EXPECT_EQ(hi.extent, 8);
    EXPECT_EQ(lo.extent, 8);
}

TEST_F(IterMapTest, ScaledVarIsNotAChain)
{
    // The paper's example: v2 = i*2 is invalid (lowest scale != 1).
    Var i = var("i");
    IterChain chain = parseIterChain(Expr(i) * 2, doms({{i, 16}}));
    EXPECT_FALSE(chain.valid);
}

TEST_F(IterMapTest, MixedRadixChain)
{
    Var a = var("a");
    Var b = var("b");
    Var c = var("c");
    // a*12 + b*4 + c with extents 2, 3, 4: proper mixed radix.
    IterChain chain =
        parseIterChain(Expr(a) * 12 + Expr(b) * 4 + c,
                       doms({{a, 2}, {b, 3}, {c, 4}}));
    ASSERT_TRUE(chain.valid) << chain.error;
    EXPECT_EQ(chain.extent, 24);
    // Wrong scale breaks the chain.
    IterChain broken =
        parseIterChain(Expr(a) * 10 + Expr(b) * 4 + c,
                       doms({{a, 2}, {b, 3}, {c, 4}}));
    EXPECT_FALSE(broken.valid);
}

TEST_F(IterMapTest, BlockBindingValidationAcceptsSplitFuse)
{
    // Paper example: v1 = i/4, v2 = i%4 is legal.
    Var i = var("i");
    Var v1 = var("v1");
    Var v2 = var("v2");
    Buffer buf = makeBuffer("B", {4, 4});
    BlockPtr block = makeBlock(
        "b",
        {IterVar(v1, Range::fromExtent(4), IterType::kSpatial),
         IterVar(v2, Range::fromExtent(4), IterType::kSpatial)},
        {}, {BufferRegion(buf, {Range(Expr(v1), intImm(1)),
                                Range(Expr(v2), intImm(1))})},
        bufferStore(buf, floatImm(0), {Expr(v1), Expr(v2)}));
    Stmt realize = blockRealize(
        {floordiv(Expr(i), 4), floormod(Expr(i), 4)},
        intImm(1, DataType::boolean()), block);
    DomMap d;
    d[i.get()] = Range::fromExtent(16);
    BindingValidation result = validateBlockBindings(
        static_cast<const BlockRealizeNode&>(*realize), d);
    EXPECT_TRUE(result.affine) << result.error;
}

TEST_F(IterMapTest, BlockBindingValidationRejectsDependentIters)
{
    // Paper example: v1 = i, v2 = i*2 is invalid (not independent).
    Var i = var("i");
    Var v1 = var("v1");
    Var v2 = var("v2");
    Buffer buf = makeBuffer("B", {16, 32});
    BlockPtr block = makeBlock(
        "b",
        {IterVar(v1, Range::fromExtent(16), IterType::kSpatial),
         IterVar(v2, Range::fromExtent(32), IterType::kSpatial)},
        {}, {BufferRegion(buf, {Range(Expr(v1), intImm(1)),
                                Range(Expr(v2), intImm(1))})},
        bufferStore(buf, floatImm(0), {Expr(v1), Expr(v2)}));
    Stmt realize = blockRealize({Expr(i), Expr(i) * 2},
                                intImm(1, DataType::boolean()), block);
    DomMap d;
    d[i.get()] = Range::fromExtent(16);
    BindingValidation result = validateBlockBindings(
        static_cast<const BlockRealizeNode&>(*realize), d);
    EXPECT_FALSE(result.affine);
}

TEST_F(IterMapTest, SharedAtomsAreRejected)
{
    Var i = var("i");
    Var v1 = var("v1");
    Var v2 = var("v2");
    Buffer buf = makeBuffer("B", {16, 16});
    BlockPtr block = makeBlock(
        "b",
        {IterVar(v1, Range::fromExtent(16), IterType::kSpatial),
         IterVar(v2, Range::fromExtent(16), IterType::kSpatial)},
        {}, {BufferRegion(buf, {Range(Expr(v1), intImm(1)),
                                Range(Expr(v2), intImm(1))})},
        bufferStore(buf, floatImm(0), {Expr(v1), Expr(v2)}));
    // v1 = i, v2 = i: same atom used twice.
    Stmt realize = blockRealize({Expr(i), Expr(i)},
                                intImm(1, DataType::boolean()), block);
    DomMap d;
    d[i.get()] = Range::fromExtent(16);
    BindingValidation result = validateBlockBindings(
        static_cast<const BlockRealizeNode&>(*realize), d);
    EXPECT_FALSE(result.affine);
}

TEST_F(IterMapTest, OverApproximationNeedsPredicate)
{
    // Binding covers 20 > domain 17: requires a guard conjunct.
    Var io = var("io");
    Var ii = var("ii");
    Var v = var("v");
    Buffer buf = makeBuffer("B", {17});
    Expr binding = Expr(io) * 4 + ii;
    BlockPtr block = makeBlock(
        "b", {IterVar(v, Range::fromExtent(17), IterType::kSpatial)}, {},
        {BufferRegion(buf, {Range(Expr(v), intImm(1))})},
        bufferStore(buf, floatImm(0), {Expr(v)}));
    DomMap d;
    d[io.get()] = Range::fromExtent(5);
    d[ii.get()] = Range::fromExtent(4);

    Stmt unguarded = blockRealize({binding},
                                  intImm(1, DataType::boolean()), block);
    EXPECT_FALSE(validateBlockBindings(
                     static_cast<const BlockRealizeNode&>(*unguarded), d)
                     .affine);

    arith::Analyzer an;
    an.bind(io, Range::fromExtent(5));
    an.bind(ii, Range::fromExtent(4));
    Expr guard = an.simplify(lt(an.simplify(binding), intImm(17)));
    Stmt guarded = blockRealize({binding}, guard, block);
    BindingValidation result = validateBlockBindings(
        static_cast<const BlockRealizeNode&>(*guarded), d);
    EXPECT_TRUE(result.affine) << result.error;
}

TEST(ConjunctionTest, Splits)
{
    Var x = var("x");
    Expr a = lt(x, intImm(3));
    Expr b = ge(x, intImm(0));
    auto parts = splitConjunction(land(a, b));
    EXPECT_EQ(parts.size(), 2u);
    EXPECT_TRUE(splitConjunction(intImm(1, DataType::boolean())).empty());
}

} // namespace
} // namespace arith
} // namespace tir
