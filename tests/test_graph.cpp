/**
 * @file
 * Graph/model-zoo and baseline-library tests: model structure sanity,
 * library support matrices, roofline monotonicity, and the end-to-end
 * executor with a tiny tuning budget.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "graph/executor.h"

namespace tir {
namespace {

TEST(ModelZooTest, GpuModelsAreWellFormed)
{
    for (const graph::ModelSpec& model :
         {graph::resnet50Gpu(), graph::mobilenetV2Gpu(),
          graph::bertLargeGpu(), graph::vitGpu()}) {
        EXPECT_FALSE(model.name.empty());
        EXPECT_GT(model.layers.size(), 3u);
        EXPECT_GT(model.totalMacs(), 1e8) << model.name;
        for (const graph::Layer& layer : model.layers) {
            EXPECT_GT(layer.count, 0);
            EXPECT_GT(layer.op.macs, 0);
        }
    }
}

TEST(ModelZooTest, ArmModelsAreQuantized)
{
    for (const graph::ModelSpec& model :
         {graph::resnet50Arm(), graph::mobilenetV2Arm(),
          graph::bertBaseArm()}) {
        for (const graph::Layer& layer : model.layers) {
            EXPECT_EQ(layer.op.func->params[0]->dtype, DataType::i8())
                << model.name;
        }
    }
}

TEST(ModelZooTest, OnlyVitIsTensorRtUnsupported)
{
    EXPECT_FALSE(graph::resnet50Gpu().tensorrt_unsupported);
    EXPECT_FALSE(graph::bertLargeGpu().tensorrt_unsupported);
    EXPECT_TRUE(graph::vitGpu().tensorrt_unsupported);
}

TEST(ModelZooTest, BertIsGemmDominated)
{
    graph::ModelSpec bert = graph::bertLargeGpu();
    double gemm_macs = 0;
    for (const graph::Layer& layer : bert.layers) {
        if (layer.op.name == "GMM" || layer.op.name == "BMM") {
            gemm_macs += layer.op.macs * layer.count;
        }
    }
    EXPECT_GT(gemm_macs / bert.totalMacs(), 0.99);
}

TEST(LibraryTest, CutlassLacksIrregularOps)
{
    hwsim::GpuDevice gpu;
    for (const workloads::OpSpec& op : workloads::gpuSuite()) {
        auto latency = baselines::libraryLatencyUs(
            baselines::Library::kCutlass, op, gpu);
        bool unsupported = op.name == "DEP" || op.name == "GRP" ||
                           op.name == "T2D";
        EXPECT_EQ(latency.has_value(), !unsupported) << op.name;
    }
}

TEST(LibraryTest, TensorRtCoversTheWholeSuite)
{
    hwsim::GpuDevice gpu;
    for (const workloads::OpSpec& op : workloads::gpuSuite()) {
        EXPECT_TRUE(baselines::libraryLatencyUs(
                        baselines::Library::kTensorRT, op, gpu)
                        .has_value())
            << op.name;
    }
}

TEST(LibraryTest, RooflineMonotonicInMacs)
{
    hwsim::GpuDevice gpu;
    workloads::OpSpec small = workloads::gmm(512, 512, 512);
    workloads::OpSpec big = workloads::gmm(2048, 2048, 2048);
    auto lat_small = baselines::libraryLatencyUs(
        baselines::Library::kCutlass, small, gpu);
    auto lat_big = baselines::libraryLatencyUs(
        baselines::Library::kCutlass, big, gpu);
    ASSERT_TRUE(lat_small && lat_big);
    EXPECT_GT(*lat_big, *lat_small);
}

TEST(LibraryTest, PyTorchPaysMoreOverheadThanTensorRT)
{
    hwsim::GpuDevice gpu;
    workloads::OpSpec tiny = workloads::gmm(64, 64, 64);
    auto trt = baselines::libraryLatencyUs(
        baselines::Library::kTensorRT, tiny, gpu);
    auto torch = baselines::libraryLatencyUs(
        baselines::Library::kPyTorchCuda, tiny, gpu);
    ASSERT_TRUE(trt && torch);
    EXPECT_GT(*torch, *trt);
}

TEST(LibraryTest, QnnpackSlowerThanAclOnInt8)
{
    hwsim::CpuDevice cpu;
    workloads::OpSpec op = workloads::armSuite()[1]; // GMM int8
    auto acl = baselines::libraryLatencyUsCpu(
        baselines::Library::kArmComputeLib, op, cpu);
    auto qnnpack = baselines::libraryLatencyUsCpu(
        baselines::Library::kPyTorchQnnpack, op, cpu);
    ASSERT_TRUE(acl && qnnpack);
    // The sdot-less backend is several times slower (the §5.3 point).
    EXPECT_GT(*qnnpack, *acl * 3);
}

TEST(LibraryTest, NamesRoundTrip)
{
    EXPECT_EQ(baselines::libraryName(baselines::Library::kCutlass),
              "CUTLASS");
    EXPECT_EQ(baselines::libraryName(baselines::Library::kTensorRT),
              "TensorRT");
    EXPECT_EQ(
        baselines::libraryName(baselines::Library::kArmComputeLib),
        "ArmComputeLib");
}

TEST(ExecutorTest, LibraryPersonaSumsLayers)
{
    hwsim::GpuDevice gpu;
    hwsim::CpuDevice cpu;
    graph::ModelSpec model = graph::bertLargeGpu();
    graph::ModelResult result = graph::runModelLibrary(
        model, baselines::Library::kTensorRT, gpu, cpu, true, 0);
    ASSERT_TRUE(result.supported);
    // At least one layer's latency times its count.
    EXPECT_GT(result.latency_us, 100);
}

TEST(ExecutorTest, TensorRtRejectsVit)
{
    hwsim::GpuDevice gpu;
    hwsim::CpuDevice cpu;
    graph::ModelResult result = graph::runModelLibrary(
        graph::vitGpu(), baselines::Library::kTensorRT, gpu, cpu, true,
        0);
    EXPECT_FALSE(result.supported);
}

TEST(ExecutorTest, FrameworkOverheadAdds)
{
    hwsim::GpuDevice gpu;
    hwsim::CpuDevice cpu;
    graph::ModelSpec model = graph::mobilenetV2Gpu();
    graph::ModelResult no_overhead = graph::runModelLibrary(
        model, baselines::Library::kPyTorchCuda, gpu, cpu, true, 0);
    graph::ModelResult with_overhead = graph::runModelLibrary(
        model, baselines::Library::kPyTorchCuda, gpu, cpu, true, 12);
    EXPECT_NEAR(with_overhead.latency_us - no_overhead.latency_us,
                model.framework_extra_ops * 12.0, 1e-6);
}

TEST(ExecutorTest, TunedModelRunsWithTinyBudget)
{
    hwsim::GpuDevice gpu;
    // A miniature model so this stays fast.
    graph::ModelSpec model;
    model.name = "tiny";
    model.layers = {{workloads::gmm(128, 128, 128), 2},
                    {workloads::conv2d(1, 8, 8, 16, 16, 3, 1, 1), 1}};
    meta::TuneOptions options;
    options.population = 3;
    options.generations = 1;
    options.children_per_generation = 4;
    options.measured_per_generation = 2;
    graph::ModelResult result = graph::runModelTuned(
        model, gpu, "gpu", {"wmma_16x16x16_f16"},
        meta::TunerStyle::kTensorIR, options);
    EXPECT_TRUE(std::isfinite(result.latency_us));
    EXPECT_GT(result.latency_us, 0);
    EXPECT_GT(result.tuning_minutes, 0);
    EXPECT_EQ(result.system, "TensorIR");
}

} // namespace
} // namespace tir
