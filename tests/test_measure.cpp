/**
 * @file
 * Measurement-backend tests: the strict env parsing that replaced
 * std::atoi/raw strtoull (TENSORIR_PARALLELISM, TENSORIR_JIT_CACHE_MB
 * — both regression tests failed before the fixes), the JitMeasurer
 * smoke contract (positive latency, median stability, hwsim fallback
 * without a toolchain, compile-budget rejection), the Table 1
 * accounting invariant trials_measured == measured_valid +
 * measured_invalid on both backends, and byte-identical journal
 * resume of wall-clock runs (complete replay and kill-mid-checkpoint).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <limits>
#include <optional>

#include "ir/printer.h"
#include "meta/journal.h"
#include "meta/measure.h"
#include "meta/search.h"
#include "meta/sketch.h"
#include "runtime/jit.h"
#include "runtime/vm.h"
#include "support/failpoint.h"
#include "support/logging.h"
#include "workloads/workloads.h"

#include "test_util.h"

namespace tir {
namespace {

/** Set an environment variable for one scope, restoring the previous
 *  value (or unsetting) on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        if (const char* old = std::getenv(name)) saved_ = old;
        if (value) {
            ::setenv(name, value, 1);
        } else {
            ::unsetenv(name);
        }
    }
    ~ScopedEnv()
    {
        if (saved_) {
            ::setenv(name_.c_str(), saved_->c_str(), 1);
        } else {
            ::unsetenv(name_.c_str());
        }
    }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

  private:
    std::string name_;
    std::optional<std::string> saved_;
};

// --- env parsing: TENSORIR_PARALLELISM ---------------------------------

TEST(EnvParsing, ParallelismRejectsGarbage)
{
    meta::TuneOptions options; // parallelism = 0 → consult the env
    // Before the fix, std::atoi mapped all of these to 0 (or UB) and
    // the search silently fell back to hardware_concurrency.
    for (const char* bad : {"abc", "8x", " 8", "0x10"}) {
        ScopedEnv env("TENSORIR_PARALLELISM", bad);
        EXPECT_THROW(meta::resolveParallelism(options), FatalError)
            << "value \"" << bad << "\" must be rejected";
    }
}

TEST(EnvParsing, ParallelismRejectsNonPositiveAndOverflow)
{
    meta::TuneOptions options;
    // Sign characters never pass the all-digits check, so "-2" cannot
    // wrap through strtoull; "0" is non-positive; the 2^64-overflow
    // and the fits-in-ull-but-not-int values are out of range.
    for (const char* bad :
         {"-2", "+4", "0", "18446744073709551616", "4294967296"}) {
        ScopedEnv env("TENSORIR_PARALLELISM", bad);
        EXPECT_THROW(meta::resolveParallelism(options), FatalError)
            << "value \"" << bad << "\" must be rejected";
    }
}

TEST(EnvParsing, ParallelismAcceptsValidAndEmptyFallsBack)
{
    meta::TuneOptions options;
    {
        ScopedEnv env("TENSORIR_PARALLELISM", "3");
        EXPECT_EQ(meta::resolveParallelism(options), 3);
    }
    {
        // Empty counts as unset: fall back to hardware_concurrency.
        ScopedEnv env("TENSORIR_PARALLELISM", "");
        EXPECT_GT(meta::resolveParallelism(options), 0);
    }
    {
        // An explicit option wins before the env is even looked at.
        ScopedEnv env("TENSORIR_PARALLELISM", "garbage");
        options.parallelism = 2;
        EXPECT_EQ(meta::resolveParallelism(options), 2);
    }
}

// --- env parsing: TENSORIR_JIT_CACHE_MB --------------------------------

TEST(EnvParsing, JitCacheMbRejectsSignsAndGarbage)
{
    // Before the fix, "-1" passed the endptr check (strtoull wraps
    // negatives to huge values) and configured an effectively
    // unbounded cache.
    for (const char* bad : {"-1", "+1", "abc", "64mb", " 64"}) {
        ScopedEnv env("TENSORIR_JIT_CACHE_MB", bad);
        EXPECT_THROW(runtime::jitCacheCapBytes(), FatalError)
            << "value \"" << bad << "\" must be rejected";
    }
}

TEST(EnvParsing, JitCacheMbRejectsRangeOverflowAndClampsMultiply)
{
    {
        // 2^64: out of strtoull's range entirely (ERANGE).
        ScopedEnv env("TENSORIR_JIT_CACHE_MB", "18446744073709551616");
        EXPECT_THROW(runtime::jitCacheCapBytes(), FatalError);
    }
    {
        // Parses as a uint64_t but the * 1024 * 1024 would overflow;
        // before the fix this wrapped to an arbitrary small cap.
        ScopedEnv env("TENSORIR_JIT_CACHE_MB", "99999999999999");
        EXPECT_EQ(runtime::jitCacheCapBytes(),
                  std::numeric_limits<uint64_t>::max());
    }
}

TEST(EnvParsing, JitCacheMbAcceptsValidAndDefaults)
{
    {
        ScopedEnv env("TENSORIR_JIT_CACHE_MB", "16");
        EXPECT_EQ(runtime::jitCacheCapBytes(), 16ull * 1024 * 1024);
    }
    {
        ScopedEnv env("TENSORIR_JIT_CACHE_MB", "");
        EXPECT_EQ(runtime::jitCacheCapBytes(), 64ull * 1024 * 1024);
    }
    {
        ScopedEnv env("TENSORIR_JIT_CACHE_MB", nullptr);
        EXPECT_EQ(runtime::jitCacheCapBytes(), 64ull * 1024 * 1024);
    }
}

// --- MeasureBackend unit contract --------------------------------------

TEST(MeasureBackendTest, HwsimServesTheEstimate)
{
    meta::HwsimMeasurer backend;
    PrimFunc func = testutil::matmul(4, 4, 4);
    hwsim::RunEstimate good;
    good.latency_us = 123.5;
    meta::Measurement m = backend.measure(func, good);
    EXPECT_TRUE(m.valid());
    EXPECT_EQ(m.latency_us, 123.5);
    EXPECT_FALSE(m.fallback);
    EXPECT_FALSE(m.compile_timeout);

    hwsim::RunEstimate rejected;
    rejected.latency_us = 1.0;
    rejected.violation = "too many threads";
    meta::Measurement r = backend.measure(func, rejected);
    EXPECT_FALSE(r.valid());
}

TEST(MeasureBackendTest, FactoryResolvesNamesStrictly)
{
    PrimFunc func = testutil::matmul(4, 4, 4);
    meta::MeasureConfig config;
    EXPECT_STREQ(meta::makeMeasureBackend("", func, config)->name(),
                 "hwsim");
    EXPECT_STREQ(
        meta::makeMeasureBackend("hwsim", func, config)->name(),
        "hwsim");
    EXPECT_STREQ(meta::makeMeasureBackend("jit", func, config)->name(),
                 "jit");
    EXPECT_TRUE(meta::makeMeasureBackend("", func, config)
                    ->deterministic());
    EXPECT_FALSE(meta::makeMeasureBackend("jit", func, config)
                     ->deterministic());
    EXPECT_THROW(meta::makeMeasureBackend("gpu", func, config),
                 FatalError);
}

/** Fixture for tests that time real native code: private on-disk JIT
 *  cache, clean in-memory JIT state, and the ambient engine
 *  environment neutralized (the CI suite runs whole passes under
 *  TENSORIR_FORCE_TREEWALK=1 / TENSORIR_ENGINE=jit; these tests pin
 *  their own world like test_jit.cpp does). */
class JitMeasurerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/tensorir-measure-test-XXXXXX";
        char* dir = ::mkdtemp(tmpl);
        ASSERT_NE(dir, nullptr);
        cache_dir_ = dir;
        cache_env_.emplace("TENSORIR_JIT_CACHE", cache_dir_.c_str());
        engine_env_.emplace("TENSORIR_ENGINE", nullptr);
        treewalk_env_.emplace("TENSORIR_FORCE_TREEWALK", nullptr);
        runtime::jitResetForTesting();
    }

    void
    TearDown() override
    {
        runtime::jitResetForTesting();
        std::error_code ec;
        std::filesystem::remove_all(cache_dir_, ec);
    }

    std::string cache_dir_;
    std::optional<ScopedEnv> cache_env_;
    std::optional<ScopedEnv> engine_env_;
    std::optional<ScopedEnv> treewalk_env_;
};

TEST_F(JitMeasurerTest, SmokeMeasuresTinyWorkload)
{
    PrimFunc func = testutil::matmul(8, 8, 8);
    hwsim::RunEstimate estimate = hwsim::CpuDevice().run(func);
    ASSERT_TRUE(estimate.valid());
    meta::MeasureConfig config;
    config.warmup = 1;
    config.repeats = 5;
    meta::JitMeasurer backend(func, config);
    meta::Measurement first = backend.measure(func, estimate);
    if (!runtime::jitAvailable()) {
        EXPECT_TRUE(first.fallback);
        EXPECT_EQ(first.latency_us, estimate.latency_us);
        return;
    }
    EXPECT_FALSE(first.fallback);
    EXPECT_FALSE(first.compile_timeout);
    ASSERT_TRUE(first.valid());
    EXPECT_GT(first.latency_us, 0.0);
    EXPECT_GT(first.wall_us, 0.0);
    // Median stability: a second measurement of the same kernel (now a
    // warm cache hit) stays within a generous factor of the first —
    // the median-of-k discipline is what keeps this bound loose but
    // safe on a noisy shared host.
    meta::Measurement second = backend.measure(func, estimate);
    ASSERT_TRUE(second.valid());
    EXPECT_GT(second.latency_us, 0.0);
    EXPECT_LT(second.latency_us, first.latency_us * 1000.0);
    EXPECT_LT(first.latency_us, second.latency_us * 1000.0);
}

TEST_F(JitMeasurerTest, NoToolchainFallsBackToHwsim)
{
    ScopedEnv cc("TENSORIR_CC", "/nonexistent/tensorir-cc");
    runtime::jitResetForTesting();
    PrimFunc func = testutil::matmul(8, 8, 8);
    hwsim::RunEstimate estimate = hwsim::CpuDevice().run(func);
    meta::JitMeasurer backend(func, meta::MeasureConfig{});
    meta::Measurement m = backend.measure(func, estimate);
    EXPECT_TRUE(m.fallback);
    EXPECT_TRUE(m.valid());
    EXPECT_EQ(m.latency_us, estimate.latency_us);
}

TEST_F(JitMeasurerTest, ForceTreeWalkFallsBackToHwsim)
{
    runtime::setForceTreeWalk(true);
    PrimFunc func = testutil::matmul(8, 8, 8);
    hwsim::RunEstimate estimate = hwsim::CpuDevice().run(func);
    meta::JitMeasurer backend(func, meta::MeasureConfig{});
    meta::Measurement m = backend.measure(func, estimate);
    runtime::setForceTreeWalk(std::nullopt);
    EXPECT_TRUE(m.fallback);
    EXPECT_EQ(m.latency_us, estimate.latency_us);
}

TEST_F(JitMeasurerTest, DeviceViolationRejectsBeforeCompile)
{
    PrimFunc func = testutil::matmul(8, 8, 8);
    hwsim::RunEstimate rejected;
    rejected.violation = "shared memory over capacity";
    meta::JitMeasurer backend(func, meta::MeasureConfig{});
    meta::Measurement m = backend.measure(func, rejected);
    EXPECT_FALSE(m.valid());
    EXPECT_FALSE(m.fallback);
}

TEST_F(JitMeasurerTest, CompileBudgetRejects)
{
    if (!runtime::jitAvailable()) {
        GTEST_SKIP() << "no toolchain: the budget path needs a compile";
    }
    runtime::jitResetForTesting(); // force a real (not cached) compile
    PrimFunc func = testutil::matmul(8, 8, 8);
    hwsim::RunEstimate estimate = hwsim::CpuDevice().run(func);
    meta::MeasureConfig config;
    config.compile_budget_ms = 1e-6; // any real compile exceeds this
    meta::JitMeasurer backend(func, config);
    meta::Measurement m = backend.measure(func, estimate);
    EXPECT_TRUE(m.compile_timeout);
    EXPECT_FALSE(m.valid());
    EXPECT_FALSE(m.fallback);
}

// --- the Table 1 accounting invariant ----------------------------------

meta::TuneOptions
measureSearchOptions(uint64_t seed)
{
    meta::TuneOptions options;
    options.population = 4;
    options.generations = 2;
    options.children_per_generation = 8;
    options.measured_per_generation = 3;
    options.seed = seed;
    options.parallelism = 1;
    return options;
}

TEST(MeasureAccountingTest, TrialsSplitInvariantOnHwsim)
{
    workloads::OpSpec op = workloads::gmm(64, 64, 64);
    hwsim::GpuDevice gpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier("C", /*gpu=*/true);
    meta::TuneOptions options = measureSearchOptions(91);
    options.generations = 3;
    meta::TuneResult result =
        meta::evolutionarySearch(op.func, sketch, gpu, options);
    EXPECT_GT(result.trials_measured, 0);
    // The regression-pinned invariant: every trial is exactly one of
    // valid or invalid, on every backend.
    EXPECT_EQ(result.trials_measured,
              result.measured_valid + result.measured_invalid);
    // Measurement-time rejects are also charged to the historical
    // invalid_filtered column (which additionally holds structural
    // rejects, hence >=).
    EXPECT_GE(result.invalid_filtered, result.measured_invalid);
    EXPECT_EQ(result.compile_timeout_filtered, 0);
    EXPECT_EQ(result.measure_fallbacks, 0);
    // Every trial — valid or not — was charged the per-measurement
    // compile+launch overhead.
    EXPECT_GE(result.tuning_cost_us,
              result.trials_measured * options.measure_overhead_us);
}

TEST(MeasureAccountingTest, TrialsSplitInvariantOnJitBackend)
{
    workloads::OpSpec op =
        workloads::gmm(16, 16, 16, DataType::f32(), DataType::f32());
    hwsim::CpuDevice cpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier("C", /*gpu=*/false);
    meta::TuneOptions options = measureSearchOptions(91);
    options.measure_backend = "jit";
    options.measure_warmup = 0;
    options.measure_repeats_real = 1;
    meta::TuneResult result =
        meta::evolutionarySearch(op.func, sketch, cpu, options);
    EXPECT_GT(result.trials_measured, 0);
    EXPECT_EQ(result.trials_measured,
              result.measured_valid + result.measured_invalid);
    EXPECT_GE(result.invalid_filtered, result.measured_invalid);
    // Without a toolchain (or under TENSORIR_FORCE_TREEWALK) every
    // measurement falls back to the analytical estimate — the tune
    // still completes, with the fallbacks accounted.
    EXPECT_LE(result.measure_fallbacks, result.trials_measured);
    EXPECT_TRUE(std::isfinite(result.best_latency_us));
}

// --- journaled wall-clock resume ---------------------------------------

void
expectIdenticalResults(const meta::TuneResult& a,
                       const meta::TuneResult& b)
{
    EXPECT_EQ(a.best_latency_us, b.best_latency_us);
    EXPECT_EQ(a.history, b.history);
    EXPECT_EQ(a.trials_measured, b.trials_measured);
    EXPECT_EQ(a.measured_valid, b.measured_valid);
    EXPECT_EQ(a.measured_invalid, b.measured_invalid);
    EXPECT_EQ(a.compile_timeout_filtered, b.compile_timeout_filtered);
    EXPECT_EQ(a.invalid_filtered, b.invalid_filtered);
    EXPECT_EQ(a.runtime_filtered, b.runtime_filtered);
    EXPECT_EQ(a.tuning_cost_us, b.tuning_cost_us);
    EXPECT_EQ(a.memo_hits, b.memo_hits);
    EXPECT_EQ(a.memo_measure_hits, b.memo_measure_hits);
    EXPECT_EQ(funcToString(a.best_func), funcToString(b.best_func));
}

TEST(MeasureResumeTest, JitBackendCompleteJournalReplaysByteIdentical)
{
    // Wall-clock latencies are not reproducible across runs — the
    // journal is. A resume from a *complete* section must reproduce
    // the original wall-clock TuneResult byte for byte without
    // re-measuring anything.
    workloads::OpSpec op =
        workloads::gmm(16, 16, 16, DataType::f32(), DataType::f32());
    hwsim::CpuDevice cpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier("C", /*gpu=*/false);
    const std::string journal =
        ::testing::TempDir() + "tensorir_measure_resume_journal.txt";
    meta::resetJournal(journal);
    failpoint::ScopedFailpoints quiet("");

    meta::TuneOptions options = measureSearchOptions(91);
    options.measure_backend = "jit";
    options.measure_warmup = 0;
    options.measure_repeats_real = 1;
    options.journal_path = journal;
    options.journal_label = "measure_resume";

    meta::TuneResult original =
        meta::evolutionarySearch(op.func, sketch, cpu, options);

    meta::TuneOptions resume_options = options;
    resume_options.resume = true;
    meta::TuneResult replayed =
        meta::evolutionarySearch(op.func, sketch, cpu, resume_options);

    EXPECT_EQ(replayed.generations_replayed, options.generations + 1);
    EXPECT_EQ(replayed.measure_fallbacks, original.measure_fallbacks);
    expectIdenticalResults(original, replayed);
}

TEST(MeasureResumeTest, JitBackendResumesAfterCrashMidCheckpoint)
{
    // The kill-mid-checkpoint contract extended to the wall-clock
    // backend: crash after a generation finished but before its
    // checkpoint persisted, resume (re-measuring only the lost work),
    // then resume once more from the now-complete journal — which must
    // reproduce the crashed-and-resumed run byte for byte, because
    // every committed latency was journaled.
    workloads::OpSpec op =
        workloads::gmm(16, 16, 16, DataType::f32(), DataType::f32());
    hwsim::CpuDevice cpu;
    meta::SketchApplier sketch =
        meta::makeLoopSketchApplier("C", /*gpu=*/false);
    const std::string journal =
        ::testing::TempDir() + "tensorir_measure_crash_journal.txt";
    meta::resetJournal(journal);
    failpoint::ScopedFailpoints quiet("");

    meta::TuneOptions options = measureSearchOptions(91);
    options.measure_backend = "jit";
    options.measure_warmup = 0;
    options.measure_repeats_real = 1;
    options.journal_path = journal;
    options.journal_label = "measure_crash";

    // Crash at the third checkpoint write: the init checkpoint and
    // generation 0's survive, generation 1's work is lost mid-write.
    {
        failpoint::ScopedFailpoints kill("search.checkpoint=throw@2");
        EXPECT_THROW(
            meta::evolutionarySearch(op.func, sketch, cpu, options),
            failpoint::InjectedFault);
    }

    meta::TuneOptions resume_options = options;
    resume_options.resume = true;
    meta::TuneResult resumed =
        meta::evolutionarySearch(op.func, sketch, cpu, resume_options);
    EXPECT_EQ(resumed.generations_replayed, 2)
        << "expected the init checkpoint plus generation 0 restored";
    EXPECT_EQ(resumed.trials_measured,
              resumed.measured_valid + resumed.measured_invalid);

    meta::TuneResult replayed = meta::evolutionarySearch(
        op.func, sketch, cpu, resume_options);
    EXPECT_EQ(replayed.generations_replayed, options.generations + 1);
    expectIdenticalResults(resumed, replayed);
}

} // namespace
} // namespace tir
