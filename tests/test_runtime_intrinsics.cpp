/**
 * @file
 * Interpreter intrinsic-semantics tests: the tile-MMA runtime callbacks
 * must accumulate correctly at arbitrary sub-tile offsets inside larger
 * buffers, and BufferPtr resolution must compute the right linear
 * offsets.
 */
#include <gtest/gtest.h>

#include "intrin/tensor_intrin.h"
#include "runtime/interpreter.h"

namespace tir {
namespace {

using runtime::Interpreter;
using runtime::NDArray;

/** Build a one-call function invoking `op` on tile bases. */
PrimFunc
singleCallFunc(const std::string& op, const Buffer& c, const Buffer& a,
               const Buffer& b, std::vector<Expr> c_base,
               std::vector<Expr> a_base, std::vector<Expr> b_base)
{
    Stmt body = evaluate(call(DataType::handle(), op,
                              {bufferPtr(c, std::move(c_base)),
                               bufferPtr(a, std::move(a_base)),
                               bufferPtr(b, std::move(b_base))}));
    return makeFunc("kernel", {a, b, c}, makeRootBlock(body));
}

TEST(IntrinsicRuntimeTest, TileMmaAtOrigin)
{
    registerBuiltinIntrinsics();
    Buffer a = makeBuffer("A", {4, 4});
    Buffer b = makeBuffer("B", {4, 4});
    Buffer c = makeBuffer("C", {4, 4});
    PrimFunc func = singleCallFunc(
        "accel.tile_mma_4x4x4", c, a, b, {intImm(0), intImm(0)},
        {intImm(0), intImm(0)}, {intImm(0), intImm(0)});
    NDArray a_data(DataType::f32(), {4, 4});
    NDArray b_data(DataType::f32(), {4, 4});
    NDArray c_data(DataType::f32(), {4, 4});
    Rng rng(3);
    a_data.fillRandom(rng);
    b_data.fillRandom(rng);
    // Pre-fill C to check accumulation semantics (+=).
    for (int64_t i = 0; i < 16; ++i) c_data.at(i) = 1.0;
    Interpreter interp;
    interp.run(func, {&a_data, &b_data, &c_data});
    for (int64_t i = 0; i < 4; ++i) {
        for (int64_t j = 0; j < 4; ++j) {
            double expect = 1.0;
            for (int64_t k = 0; k < 4; ++k) {
                expect += a_data.at(i * 4 + k) * b_data.at(k * 4 + j);
            }
            EXPECT_NEAR(c_data.at(i * 4 + j), expect, 1e-9);
        }
    }
}

TEST(IntrinsicRuntimeTest, TileMmaAtSubTileOffset)
{
    // The 4x4x4 tile sits at row/col offsets inside 8x8 buffers; the
    // row strides must come from the actual buffer shapes.
    registerBuiltinIntrinsics();
    Buffer a = makeBuffer("A", {8, 8});
    Buffer b = makeBuffer("B", {8, 8});
    Buffer c = makeBuffer("C", {8, 8});
    PrimFunc func = singleCallFunc(
        "accel.tile_mma_4x4x4", c, a, b, {intImm(4), intImm(4)},
        {intImm(4), intImm(0)}, {intImm(0), intImm(4)});
    NDArray a_data(DataType::f32(), {8, 8});
    NDArray b_data(DataType::f32(), {8, 8});
    NDArray c_data(DataType::f32(), {8, 8});
    Rng rng(7);
    a_data.fillRandom(rng);
    b_data.fillRandom(rng);
    Interpreter interp;
    interp.run(func, {&a_data, &b_data, &c_data});
    // Only the [4:8, 4:8] tile of C is written.
    for (int64_t i = 0; i < 8; ++i) {
        for (int64_t j = 0; j < 8; ++j) {
            double expect = 0;
            if (i >= 4 && j >= 4) {
                for (int64_t k = 0; k < 4; ++k) {
                    expect += a_data.at(i * 8 + k) *
                              b_data.at(k * 8 + j);
                }
            }
            EXPECT_NEAR(c_data.at(i * 8 + j), expect, 1e-9)
                << i << "," << j;
        }
    }
}

TEST(IntrinsicRuntimeTest, WmmaAndSdotShapes)
{
    registerBuiltinIntrinsics();
    // 16x16x16 wmma on exact-size buffers.
    Buffer a = makeBuffer("A", {16, 16}, DataType::f16());
    Buffer b = makeBuffer("B", {16, 16}, DataType::f16());
    Buffer c = makeBuffer("C", {16, 16}, DataType::f16());
    PrimFunc func = singleCallFunc(
        "wmma.mma_sync_16x16x16", c, a, b, {intImm(0), intImm(0)},
        {intImm(0), intImm(0)}, {intImm(0), intImm(0)});
    NDArray a_data(DataType::f16(), {16, 16});
    NDArray b_data(DataType::f16(), {16, 16});
    NDArray c_data(DataType::f16(), {16, 16});
    for (int64_t i = 0; i < 256; ++i) {
        a_data.at(i) = (i % 5) - 2;
        b_data.at(i) = (i % 3) - 1;
    }
    Interpreter interp;
    interp.run(func, {&a_data, &b_data, &c_data});
    double expect00 = 0;
    for (int64_t k = 0; k < 16; ++k) {
        expect00 += a_data.at(k) * b_data.at(k * 16);
    }
    EXPECT_NEAR(c_data.at(0), expect00, 1e-9);
}

TEST(IntrinsicRuntimeTest, UnregisteredIntrinsicIsFatal)
{
    Buffer a = makeBuffer("A", {4});
    Stmt body = evaluate(
        call(DataType::handle(), "mystery.op", {bufferPtr(a,
                                                          {intImm(0)})}));
    PrimFunc func = makeFunc("kernel", {a}, makeRootBlock(body));
    NDArray data(DataType::f32(), {4});
    Interpreter interp;
    EXPECT_THROW(interp.run(func, {&data}), FatalError);
}

TEST(IntrinsicRuntimeTest, ResolvePtrOffsets)
{
    registerBuiltinIntrinsics();
    Buffer a = makeBuffer("A", {3, 5});
    Interpreter interp;
    bool checked = false;
    Interpreter::registerIntrinsic(
        "test.probe_offset",
        [&](runtime::ExecContext& in, const CallNode& c) {
            runtime::BufferRef ref = in.resolvePtr(c.args[0]);
            EXPECT_EQ(ref.offset, 2 * 5 + 3);
            EXPECT_EQ(ref.buffer->shapeInt(1), 5);
            checked = true;
        });
    Stmt body = evaluate(call(DataType::handle(), "test.probe_offset",
                              {bufferPtr(a, {intImm(2), intImm(3)})}));
    PrimFunc func = makeFunc("kernel", {a}, makeRootBlock(body));
    NDArray data(DataType::f32(), {3, 5});
    interp.run(func, {&data});
    EXPECT_TRUE(checked);
}

TEST(InterpreterEdgeTest, PredicateSkipsInstances)
{
    // Guarded block: only even indices are written.
    Buffer a = makeBuffer("A", {8});
    Var i = var("i");
    Var v = var("v");
    BlockPtr block = makeBlock(
        "w", {IterVar(v, Range::fromExtent(8), IterType::kSpatial)}, {},
        {BufferRegion(a, {Range(Expr(v), intImm(1))})},
        bufferStore(a, floatImm(1.0), {Expr(v)}));
    Stmt realize = blockRealize(
        {Expr(i)}, eq(floormod(Expr(i), 2), intImm(0)), block);
    Stmt loop = makeFor(i, intImm(0), intImm(8), realize);
    PrimFunc func = makeFunc("f", {a}, makeRootBlock(loop));
    NDArray data(DataType::f32(), {8});
    Interpreter interp;
    interp.run(func, {&data});
    for (int64_t e = 0; e < 8; ++e) {
        EXPECT_EQ(data.at(e), e % 2 == 0 ? 1.0 : 0.0);
    }
}

TEST(InterpreterEdgeTest, SelectIsLazy)
{
    // The guarded branch indexes out of bounds when taken; select must
    // not evaluate it (this is what padding stages rely on).
    Buffer a = makeBuffer("A", {4});
    Buffer b = makeBuffer("B", {6});
    Var i = var("i");
    Var v = var("v");
    Expr guarded = select(lt(v, intImm(4)),
                          bufferLoad(a, {Expr(v)}), floatImm(0.0));
    BlockPtr block = makeBlock(
        "pad", {IterVar(v, Range::fromExtent(6), IterType::kSpatial)},
        {BufferRegion(a, {Range(intImm(0), intImm(4))})},
        {BufferRegion(b, {Range(Expr(v), intImm(1))})},
        bufferStore(b, guarded, {Expr(v)}));
    Stmt loop = makeFor(i, intImm(0), intImm(6),
                        blockRealize({Expr(i)},
                                     intImm(1, DataType::boolean()),
                                     block));
    PrimFunc func = makeFunc("f", {a, b}, makeRootBlock(loop));
    NDArray a_data(DataType::f32(), {4});
    NDArray b_data(DataType::f32(), {6});
    for (int64_t e = 0; e < 4; ++e) a_data.at(e) = e + 1;
    Interpreter interp;
    interp.run(func, {&a_data, &b_data});
    EXPECT_EQ(b_data.at(3), 4.0);
    EXPECT_EQ(b_data.at(4), 0.0);
    EXPECT_EQ(b_data.at(5), 0.0);
}

} // namespace
} // namespace tir
