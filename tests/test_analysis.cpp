/**
 * @file
 * Static memory analysis (tir/analysis): the cross-thread race
 * detector, the out-of-bounds checker, and their wiring — the search
 * filter counters, the Schedule validation entry points, the
 * interpreter debug assertion, the storage-sync auto-insertion pass,
 * and the per-region producer-consumer cover check. Each adversarial
 * schedule is paired with a clean counterpart so the three-valued
 * design (error / warning / silent) is pinned from both sides.
 */
#include <gtest/gtest.h>

#include "lower/lower.h"
#include "meta/search.h"
#include "runtime/interpreter.h"
#include "tir/analysis/analysis.h"
#include "tir/schedule.h"
#include "tir/verify.h"
#include "workloads/workloads.h"

namespace tir {
namespace {

using analysis::AnalysisOptions;
using analysis::AnalysisReport;
using analysis::DiagKind;

/** A single-statement thread launch: for tx in [0, extent) bound to
 *  threadIdx.x around `body`. */
Stmt
launch(const Var& tx, int64_t extent, Stmt body)
{
    return makeFor(tx, intImm(0), intImm(extent), std::move(body),
                   ForKind::kThreadBinding, "threadIdx.x");
}

// --- Write-write races ---------------------------------------------------

TEST(RaceAnalysisTest, AllThreadsWriteOneCellIsAnError)
{
    // for tx in [0,8) threadIdx.x: A[0] = tx — every thread stores a
    // different value to the same cell.
    Buffer a = makeBuffer("A", {8}, DataType::i32());
    Var tx = var("tx");
    PrimFunc func =
        makeFunc("ww_race", {a}, launch(tx, 8, bufferStore(a, tx, {intImm(0)})));

    AnalysisReport report = analysis::analyzeFunc(func);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.hasError(DiagKind::kWriteRace));
    // The diagnostic names the buffer and the racing axis.
    std::string summary = report.summary();
    EXPECT_NE(summary.find("write-write race"), std::string::npos)
        << summary;
    EXPECT_NE(summary.find("'A'"), std::string::npos) << summary;
    EXPECT_NE(summary.find("threadIdx.x"), std::string::npos) << summary;
}

TEST(RaceAnalysisTest, PerThreadCellsPass)
{
    // A[tx] = tx: provably disjoint per-thread footprints.
    Buffer a = makeBuffer("A", {8}, DataType::i32());
    Var tx = var("tx");
    PrimFunc func =
        makeFunc("ww_clean", {a}, launch(tx, 8, bufferStore(a, tx, {tx})));
    EXPECT_TRUE(analysis::analyzeFunc(func).ok());
}

TEST(RaceAnalysisTest, UniformBroadcastWriteIsBenign)
{
    // A[0] = 7 from every thread: same value, no hazard worth failing
    // a schedule over.
    Buffer a = makeBuffer("A", {8}, DataType::i32());
    Var tx = var("tx");
    PrimFunc func = makeFunc(
        "ww_uniform", {a},
        launch(tx, 8, bufferStore(a, intImm(7), {intImm(0)})));
    AnalysisReport report = analysis::analyzeFunc(func);
    EXPECT_FALSE(report.hasError(DiagKind::kWriteRace))
        << report.summary();
}

TEST(RaceAnalysisTest, BindingReductionLoopRaces)
{
    // The classic scheduling mistake: bind the reduction loop of a
    // matmul to a thread axis. Every thread then read-modify-writes
    // C[i, j]. Thread-binding validation cannot see this (the binding
    // is structurally fine); the race analysis must.
    workloads::OpSpec op = workloads::gmm(32, 32, 32);
    Schedule sch(op.func, 7);
    std::vector<Var> loops = sch.getLoops("C");
    ASSERT_EQ(loops.size(), 3u);
    sch.bind(loops[2], "threadIdx.x"); // k: the reduction axis

    EXPECT_TRUE(verifyThreadBindings(sch.func()).ok);
    AnalysisReport report = analysis::analyzeFunc(sch.func());
    EXPECT_TRUE(report.hasError(DiagKind::kWriteRace))
        << report.summary();

    // The Schedule-level entry points surface the same finding.
    EXPECT_THROW(sch.validateMemoryAnalysis(), FatalError);
    EXPECT_NE(sch.analysisDiagnostics().find("write-write race"),
              std::string::npos);
}

TEST(RaceAnalysisTest, BindingSpatialLoopIsClean)
{
    workloads::OpSpec op = workloads::gmm(32, 32, 32);
    Schedule sch(op.func, 7);
    std::vector<Var> loops = sch.getLoops("C");
    ASSERT_EQ(loops.size(), 3u);
    sch.bind(loops[0], "threadIdx.x"); // i: spatial — each thread owns
                                       // its own C rows
    EXPECT_TRUE(analysis::analyzeFunc(sch.func()).ok())
        << sch.analysisDiagnostics();
    EXPECT_NO_THROW(sch.validateMemoryAnalysis());
    EXPECT_EQ(sch.analysisDiagnostics(), "");
}

// --- Shared-memory read-after-write ordering -----------------------------

/** seq { S[tx] = A[tx]; <maybe sync>; B[tx] = S[7 - tx] } under a
 *  threadIdx.x launch of 8: the read crosses threads (tx = 0 reads the
 *  cell thread 7 wrote), so it is only ordered through a barrier. */
PrimFunc
sharedReversal(bool with_sync)
{
    Buffer a = makeBuffer("A", {8}, DataType::i32());
    Buffer b = makeBuffer("B", {8}, DataType::i32());
    Buffer s = makeBuffer("S", {8}, DataType::i32(), "shared");
    Var tx = var("tx");
    std::vector<Stmt> body;
    body.push_back(bufferStore(s, bufferLoad(a, {tx}), {tx}));
    if (with_sync) body.push_back(storageSync());
    body.push_back(bufferStore(b, bufferLoad(s, {intImm(7) - tx}), {tx}));
    return makeFunc(with_sync ? "raw_synced" : "raw_no_sync", {a, b},
                    launch(tx, 8, seq(std::move(body))));
}

TEST(RaceAnalysisTest, SharedRawWithoutSyncIsAnError)
{
    AnalysisReport report = analysis::analyzeFunc(sharedReversal(false));
    EXPECT_TRUE(report.hasError(DiagKind::kRawNoSync))
        << report.summary();
    std::string summary = report.summary();
    EXPECT_NE(summary.find("'S'"), std::string::npos) << summary;
}

TEST(RaceAnalysisTest, SharedRawWithSyncPasses)
{
    AnalysisReport report = analysis::analyzeFunc(sharedReversal(true));
    EXPECT_FALSE(report.hasError(DiagKind::kRawNoSync))
        << report.summary();
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(RaceAnalysisTest, InsertStorageSyncRepairsTheHazard)
{
    // The lowering pass places the barrier the hand-written program
    // was missing, and the repaired program analyzes clean.
    PrimFunc fixed = insertStorageSync(sharedReversal(false));
    EXPECT_TRUE(analysis::analyzeFunc(fixed).ok());
}

TEST(RaceAnalysisTest, EnumerationBudgetZeroDowngradesToWarning)
{
    // The value-reversal hazard is only provable by concrete
    // enumeration; with the search filter's zero budget it must stay a
    // warning (possible, unproven) — never an error.
    AnalysisOptions opts;
    opts.exhaustive_pair_limit = 0;
    AnalysisReport report =
        analysis::analyzeFunc(sharedReversal(false), opts);
    EXPECT_FALSE(report.hasError(DiagKind::kRawNoSync));
    bool warned = false;
    for (const analysis::Diagnostic& d : report.diagnostics) {
        warned |= d.kind == DiagKind::kRawNoSync &&
                  d.severity == analysis::Severity::kWarning;
    }
    EXPECT_TRUE(warned) << report.summary();
}

// --- Out-of-bounds accesses ----------------------------------------------

TEST(BoundsAnalysisTest, OffByOneReadIsAnErrorWithInterval)
{
    // for i in [0,8): B[i] = A[i + 1] — A has shape {8}, so i = 7
    // reads A[8].
    Buffer a = makeBuffer("A", {8}, DataType::i32());
    Buffer b = makeBuffer("B", {8}, DataType::i32());
    Var i = var("i");
    PrimFunc func = makeFunc(
        "oob", {a, b},
        makeFor(i, intImm(0), intImm(8),
                bufferStore(b, bufferLoad(a, {i + 1}), {i})));

    AnalysisReport report = analysis::analyzeFunc(func);
    EXPECT_TRUE(report.hasError(DiagKind::kOutOfBounds));
    std::string summary = report.summary();
    // Actionable detail: the index expression, its derived interval,
    // and the extent it exceeds.
    EXPECT_NE(summary.find("out-of-bounds"), std::string::npos)
        << summary;
    EXPECT_NE(summary.find("[1, 8]"), std::string::npos) << summary;
    EXPECT_NE(summary.find("8"), std::string::npos) << summary;
}

TEST(BoundsAnalysisTest, GuardedTailReadPasses)
{
    // Same loop, but the tail access is guarded: if (i < 7) then
    // A[i + 1] stays within shape {8}. The guard must participate in
    // the proof (interval analysis alone would still see hi = 8).
    Buffer a = makeBuffer("A", {8}, DataType::i32());
    Buffer b = makeBuffer("B", {8}, DataType::i32());
    Var i = var("i");
    PrimFunc func = makeFunc(
        "oob_guarded", {a, b},
        makeFor(i, intImm(0), intImm(8),
                ifThenElse(lt(i, intImm(7)),
                           bufferStore(b, bufferLoad(a, {i + 1}), {i}))));
    EXPECT_TRUE(analysis::analyzeFunc(func).ok())
        << analysis::analyzeFunc(func).summary();
}

TEST(BoundsAnalysisTest, WriteOutOfBoundsFlagged)
{
    // Writes are checked like reads: B[i + 4] with i in [0,8) exceeds
    // shape {8} for i >= 4.
    Buffer b = makeBuffer("B", {8}, DataType::i32());
    Var i = var("i");
    PrimFunc func =
        makeFunc("oob_write", {b},
                 makeFor(i, intImm(0), intImm(8),
                         bufferStore(b, i, {i + 4})));
    AnalysisReport report = analysis::analyzeFunc(func);
    EXPECT_TRUE(report.hasError(DiagKind::kOutOfBounds))
        << report.summary();
}

TEST(BoundsAnalysisTest, ScheduledWorkloadsAnalyzeClean)
{
    // Every unscheduled small-suite workload — and a cache_read'd
    // variant — must pass: the analysis gates the search, so false
    // positives here would starve the population.
    for (workloads::OpSpec op :
         {workloads::gmm(32, 32, 32), workloads::conv2d(1, 8, 8, 16, 16, 3, 1, 1)}) {
        AnalysisReport report = analysis::analyzeFunc(op.func);
        EXPECT_TRUE(report.ok()) << op.func->name << ":\n"
                                 << report.summary();
    }
}

// --- Interpreter debug gate ----------------------------------------------

TEST(AnalysisWiringTest, InterpreterDebugChecksRejectRacyProgram)
{
    Buffer a = makeBuffer("A", {8}, DataType::i32());
    Var tx = var("tx");
    PrimFunc racy =
        makeFunc("ww_race", {a}, launch(tx, 8, bufferStore(a, tx, {intImm(0)})));
    runtime::NDArray backing(DataType::i32(), {8});

    runtime::Interpreter interp;
    runtime::Interpreter::setDebugChecks(true);
    EXPECT_THROW(interp.run(racy, {&backing}), FatalError);

    // Off (the default), the sequential interpreter executes it fine.
    runtime::Interpreter::setDebugChecks(false);
    EXPECT_NO_THROW(interp.run(racy, {&backing}));
}

// --- Search filter -------------------------------------------------------

TEST(AnalysisWiringTest, SearchFiltersRacyCandidatesAndCountsThem)
{
    // A sketch family where one categorical decision picks the loop to
    // bind: the reduction choice races (filtered and counted), the
    // spatial choices are clean (they form the population).
    workloads::OpSpec op = workloads::gmm(32, 32, 32);
    meta::SketchApplier sketch = [](Schedule& sch) {
        std::vector<Var> loops = sch.getLoops("C");
        int64_t choice =
            sch.sampleCategorical({0, 1, 2}, {1.0, 1.0, 1.0});
        sch.bind(loops[static_cast<size_t>(choice)], "threadIdx.x");
    };
    hwsim::GpuDevice gpu;
    meta::TuneOptions options;
    options.population = 6;
    options.generations = 3;
    options.children_per_generation = 12;
    options.measured_per_generation = 4;
    options.seed = 11;
    options.parallelism = 1;
    meta::TuneResult result =
        meta::evolutionarySearch(op.func, sketch, gpu, options);

    EXPECT_GT(result.race_filtered, 0)
        << "the reduction-bound choice never got sampled";
    EXPECT_EQ(result.bounds_filtered, 0);
    // The winner is one of the clean bindings.
    EXPECT_TRUE(analysis::analyzeFunc(result.best_func).ok());
}

TEST(AnalysisWiringTest, AutoTuneWinnersPassFullAnalysis)
{
    // autoTune re-checks its winner with the full enumeration budget
    // (a TIR_CHECK); a normal tensorized tuning run must survive it.
    workloads::OpSpec op = workloads::gmm(64, 64, 64);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneOptions options;
    options.population = 4;
    options.generations = 1;
    options.children_per_generation = 8;
    options.measured_per_generation = 2;
    options.seed = 5;
    meta::TuneResult result = meta::autoTune(task, gpu, options);
    EXPECT_TRUE(analysis::analyzeFunc(result.best_func).ok());
    EXPECT_GE(result.race_filtered, 0);
}

// --- Per-region producer-consumer cover ----------------------------------

/** Root-block function: `stages` in sequence, `allocs` block-local. */
PrimFunc
stagedFunc(std::vector<Stmt> stages, std::vector<Buffer> params,
           std::vector<Buffer> allocs)
{
    return makeFunc("staged", std::move(params),
                    makeRootBlock(seq(std::move(stages)),
                                  std::move(allocs)));
}

TEST(RegionCoverTest, GapBetweenWrittenPiecesIsCaught)
{
    // Producers write T[0..3] and T[8..11]; a consumer reads T[5].
    // The union hull [0..11] hides the gap — the per-piece check must
    // not.
    Buffer t = makeBuffer("T", {16}, DataType::i32());
    Buffer out = makeBuffer("out", {1}, DataType::i32());
    Var i = var("i");
    Var j = var("j");
    std::vector<Stmt> stages;
    stages.push_back(
        makeFor(i, intImm(0), intImm(4), bufferStore(t, i, {i})));
    stages.push_back(
        makeFor(j, intImm(0), intImm(4), bufferStore(t, j, {j + 8})));
    stages.push_back(
        bufferStore(out, bufferLoad(t, {intImm(5)}), {intImm(0)}));
    PrimFunc func = stagedFunc(std::move(stages), {out}, {t});

    VerifyResult result = verifyRegionCover(func);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message().find("do not cover"), std::string::npos)
        << result.message();
    EXPECT_NE(result.message().find("T[5..5]"), std::string::npos)
        << result.message();
}

TEST(RegionCoverTest, StitchedAdjacentPiecesCoverASpanningRead)
{
    // Producers write T[0..7] and T[8..15]; a consumer reads all of
    // T. Neither piece alone covers the read — the 1-D stitching must
    // merge them into [0..15] first.
    Buffer t = makeBuffer("T", {16}, DataType::i32());
    Buffer out = makeBuffer("out", {16}, DataType::i32());
    Var i = var("i");
    Var j = var("j");
    Var k = var("k");
    std::vector<Stmt> stages;
    stages.push_back(
        makeFor(i, intImm(0), intImm(8), bufferStore(t, i, {i})));
    stages.push_back(
        makeFor(j, intImm(0), intImm(8), bufferStore(t, j, {j + 8})));
    stages.push_back(makeFor(k, intImm(0), intImm(16),
                             bufferStore(out, bufferLoad(t, {k}), {k})));
    PrimFunc func = stagedFunc(std::move(stages), {out}, {t});
    EXPECT_TRUE(verifyRegionCover(func).ok)
        << verifyRegionCover(func).message();
}

TEST(RegionCoverTest, ExactCoverStillPasses)
{
    Buffer t = makeBuffer("T", {16}, DataType::i32());
    Buffer out = makeBuffer("out", {16}, DataType::i32());
    Var i = var("i");
    Var k = var("k");
    std::vector<Stmt> stages;
    stages.push_back(
        makeFor(i, intImm(0), intImm(16), bufferStore(t, i, {i})));
    stages.push_back(makeFor(k, intImm(0), intImm(16),
                             bufferStore(out, bufferLoad(t, {k}), {k})));
    PrimFunc func = stagedFunc(std::move(stages), {out}, {t});
    EXPECT_TRUE(verifyRegionCover(func).ok)
        << verifyRegionCover(func).message();
}

} // namespace
} // namespace tir
