/**
 * @file
 * Native JIT tier tests: compile-load-run correctness against the
 * oracle, cache behaviour (memory hit, disk hit, eviction, corrupt-.so
 * recovery), the engine-selection contract, and graceful VM fallback
 * under injected compiler/loader failures and a missing toolchain.
 * The cache-behaviour tests redirect TENSORIR_JIT_CACHE to a private
 * temporary directory so they never race another process's cache.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>

#include "meta/search.h"
#include "runtime/jit.h"
#include "support/failpoint.h"
#include "workloads/workloads.h"

#include "test_util.h"

namespace tir {
namespace {

namespace fs = std::filesystem;

using testutil::matmul;

/** Set an environment variable for one scope, restoring the previous
 *  value (or unsetting) on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        if (const char* old = std::getenv(name)) saved_ = old;
        if (value) {
            ::setenv(name, value, 1);
        } else {
            ::unsetenv(name);
        }
    }
    ~ScopedEnv()
    {
        if (saved_) {
            ::setenv(name_.c_str(), saved_->c_str(), 1);
        } else {
            ::unsetenv(name_.c_str());
        }
    }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

  private:
    std::string name_;
    std::optional<std::string> saved_;
};

/** Fixture: private on-disk cache per test + clean in-memory state.
 *  Also neutralizes the ambient engine environment (CI runs the whole
 *  suite under TENSORIR_FORCE_TREEWALK=1 and TENSORIR_ENGINE=jit
 *  passes) — these tests exercise the selection machinery itself, so
 *  they pin their own engine like the differential tests pin their own
 *  interpreters. */
class JitTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/tensorir-jit-test-XXXXXX";
        char* dir = ::mkdtemp(tmpl);
        ASSERT_NE(dir, nullptr);
        cache_dir_ = dir;
        cache_env_.emplace("TENSORIR_JIT_CACHE", cache_dir_.c_str());
        engine_env_.emplace("TENSORIR_ENGINE", nullptr);
        treewalk_env_.emplace("TENSORIR_FORCE_TREEWALK", nullptr);
        runtime::jitResetForTesting();
    }

    void
    TearDown() override
    {
        runtime::jitResetForTesting();
        treewalk_env_.reset();
        engine_env_.reset();
        cache_env_.reset();
        std::error_code ec;
        fs::remove_all(cache_dir_, ec);
    }

    /** Run `func` through the tree-walking oracle on diffInputs-style
     *  seeded arguments and return the outputs for comparison. */
    static std::vector<runtime::NDArray>
    seededArgs(const PrimFunc& func, uint64_t seed = 7)
    {
        Rng rng(seed);
        std::vector<runtime::NDArray> arrays;
        for (const Buffer& param : func->params) {
            std::vector<int64_t> shape;
            for (size_t d = 0; d < param->ndim(); ++d) {
                shape.push_back(param->shapeInt(d));
            }
            runtime::NDArray array(param->dtype, shape);
            if (param->dtype.isInt()) {
                array.fillRandom(rng, -4, 4);
            } else {
                array.fillRandom(rng);
            }
            arrays.push_back(std::move(array));
        }
        return arrays;
    }

    static std::vector<runtime::NDArray*>
    ptrs(std::vector<runtime::NDArray>& arrays)
    {
        std::vector<runtime::NDArray*> out;
        for (runtime::NDArray& a : arrays) out.push_back(&a);
        return out;
    }

    std::string cache_dir_;
    std::optional<ScopedEnv> cache_env_;
    std::optional<ScopedEnv> engine_env_;
    std::optional<ScopedEnv> treewalk_env_;
};

TEST(JitEngineTest, EngineNamesRoundTrip)
{
    using runtime::Engine;
    EXPECT_STREQ(runtime::engineName(Engine::kTreeWalk), "treewalk");
    EXPECT_STREQ(runtime::engineName(Engine::kVm), "vm");
    EXPECT_STREQ(runtime::engineName(Engine::kJit), "jit");
    EXPECT_EQ(runtime::parseEngineName("treewalk"), Engine::kTreeWalk);
    EXPECT_EQ(runtime::parseEngineName("vm"), Engine::kVm);
    EXPECT_EQ(runtime::parseEngineName("jit"), Engine::kJit);
    EXPECT_EQ(runtime::parseEngineName("JIT"), std::nullopt);
    EXPECT_EQ(runtime::parseEngineName(""), std::nullopt);
}

TEST(JitEngineTest, SelectionOrderContract)
{
    using runtime::Engine;
    // This test asserts the selection order itself, so clear the env
    // knobs a CI pass may have exported for the rest of the suite.
    ScopedEnv engine_env("TENSORIR_ENGINE", nullptr);
    ScopedEnv treewalk_env("TENSORIR_FORCE_TREEWALK", nullptr);
    // Default: the bytecode VM.
    EXPECT_EQ(runtime::selectedEngine(), Engine::kVm);
    {
        // An explicit override wins over the default...
        runtime::ScopedEngine jit(Engine::kJit);
        EXPECT_EQ(runtime::selectedEngine(), Engine::kJit);
        // ...but forceTreeWalk beats everything (the CI escape hatch).
        runtime::setForceTreeWalk(true);
        EXPECT_EQ(runtime::selectedEngine(), Engine::kTreeWalk);
        runtime::setForceTreeWalk(std::nullopt);
        EXPECT_EQ(runtime::selectedEngine(), Engine::kJit);
    }
    // ScopedEngine restored the previous (empty) override.
    EXPECT_EQ(runtime::selectedEngine(), Engine::kVm);
}

TEST_F(JitTest, CompiledKernelMatchesOracleBitExact)
{
    if (!runtime::jitAvailable()) {
        GTEST_SKIP() << "no working C compiler for the JIT tier";
    }
    PrimFunc func = matmul(12, 10, 8);
    std::shared_ptr<const runtime::JitModule> mod =
        runtime::jitCompile(func);
    ASSERT_NE(mod, nullptr);
    EXPECT_TRUE(fs::exists(mod->objectPath()));

    std::vector<runtime::NDArray> jit_args = seededArgs(func);
    std::vector<runtime::NDArray> tw_args = seededArgs(func);
    std::vector<runtime::NDArray*> jit_ptrs = ptrs(jit_args);
    std::vector<runtime::NDArray*> tw_ptrs = ptrs(tw_args);
    mod->run(jit_ptrs);
    runtime::Interpreter interp;
    interp.run(func, tw_ptrs);
    for (size_t i = 0; i < jit_args.size(); ++i) {
        EXPECT_EQ(jit_args[i].maxAbsDiff(tw_args[i]), 0.0)
            << "argument " << i;
    }
}

TEST_F(JitTest, MemoryAndDiskCacheHits)
{
    if (!runtime::jitAvailable()) {
        GTEST_SKIP() << "no working C compiler for the JIT tier";
    }
    PrimFunc func = matmul(8, 8, 8);
    ASSERT_NE(runtime::jitCompile(func), nullptr);
    EXPECT_EQ(runtime::jitStats().compiles, 1u);

    // Second request: served from the in-memory module cache.
    ASSERT_NE(runtime::jitCompile(func), nullptr);
    EXPECT_EQ(runtime::jitStats().memory_hits, 1u);
    EXPECT_EQ(runtime::jitStats().compiles, 1u);

    // Fresh process state, same disk cache: dlopen without compiling.
    runtime::jitResetForTesting();
    ASSERT_NE(runtime::jitCompile(func), nullptr);
    EXPECT_EQ(runtime::jitStats().disk_hits, 1u);
    EXPECT_EQ(runtime::jitStats().compiles, 0u);
}

TEST_F(JitTest, CorruptCachedObjectIsRecompiled)
{
    if (!runtime::jitAvailable()) {
        GTEST_SKIP() << "no working C compiler for the JIT tier";
    }
    PrimFunc func = matmul(9, 9, 9);
    ASSERT_NE(runtime::jitCompile(func), nullptr);
    std::string so = runtime::jitObjectPathFor(func);
    ASSERT_TRUE(fs::exists(so));

    // Simulate a crash mid-write / bit rot: garbage where the object
    // should be. A fresh process must recover transparently.
    runtime::jitResetForTesting();
    {
        std::ofstream out(so, std::ios::binary | std::ios::trunc);
        out << "this is not an ELF shared object";
    }
    std::shared_ptr<const runtime::JitModule> mod =
        runtime::jitCompile(func);
    ASSERT_NE(mod, nullptr);
    EXPECT_EQ(runtime::jitStats().recompiles, 1u);
    EXPECT_EQ(runtime::jitStats().compiles, 1u);

    // And the recovered module still computes the right answer.
    std::vector<runtime::NDArray> jit_args = seededArgs(func);
    std::vector<runtime::NDArray> tw_args = seededArgs(func);
    std::vector<runtime::NDArray*> jit_ptrs = ptrs(jit_args);
    std::vector<runtime::NDArray*> tw_ptrs = ptrs(tw_args);
    mod->run(jit_ptrs);
    runtime::Interpreter interp;
    interp.run(func, tw_ptrs);
    for (size_t i = 0; i < jit_args.size(); ++i) {
        EXPECT_EQ(jit_args[i].maxAbsDiff(tw_args[i]), 0.0);
    }
}

TEST_F(JitTest, CacheEvictsOldestObjectsBeyondCap)
{
    if (!runtime::jitAvailable()) {
        GTEST_SKIP() << "no working C compiler for the JIT tier";
    }
    // A zero-megabyte cap forces every object except the one just
    // produced out of the cache.
    ScopedEnv cap("TENSORIR_JIT_CACHE_MB", "0");
    PrimFunc a = matmul(8, 8, 8);
    PrimFunc b = matmul(16, 16, 16);
    ASSERT_NE(runtime::jitCompile(a), nullptr);
    std::string a_so = runtime::jitObjectPathFor(a);
    EXPECT_TRUE(fs::exists(a_so));

    ASSERT_NE(runtime::jitCompile(b), nullptr);
    EXPECT_FALSE(fs::exists(a_so))
        << "oldest object should have been evicted";
    EXPECT_TRUE(fs::exists(runtime::jitObjectPathFor(b)))
        << "the just-compiled object must survive its own eviction "
           "pass";
    EXPECT_GE(runtime::jitStats().evictions, 1u);

    // The evicted kernel still works — it is simply a miss again.
    runtime::jitResetForTesting();
    ASSERT_NE(runtime::jitCompile(a), nullptr);
    EXPECT_EQ(runtime::jitStats().compiles, 1u);
}

TEST_F(JitTest, CompilerFailureFallsBackToVm)
{
    runtime::ScopedEngine jit(runtime::Engine::kJit);
    failpoint::ScopedFailpoints chaos("seed=5; jit.compile=error(1)");
    PrimFunc func = matmul(10, 10, 10);
    std::vector<runtime::NDArray> args = seededArgs(func);
    std::vector<runtime::NDArray> tw_args = seededArgs(func);
    std::vector<runtime::NDArray*> arg_ptrs = ptrs(args);
    std::vector<runtime::NDArray*> tw_ptrs = ptrs(tw_args);
    // execute must degrade to the VM, not throw.
    runtime::execute(func, arg_ptrs);
    EXPECT_GE(runtime::jitStats().vm_fallbacks, 1u);
    if (runtime::jitAvailable()) {
        EXPECT_GE(runtime::jitStats().compile_failures, 1u);
    }
    runtime::Interpreter interp;
    interp.run(func, tw_ptrs);
    for (size_t i = 0; i < args.size(); ++i) {
        EXPECT_EQ(args[i].maxAbsDiff(tw_args[i]), 0.0);
    }
}

TEST_F(JitTest, DlopenFailureFallsBackToVm)
{
    runtime::ScopedEngine jit(runtime::Engine::kJit);
    failpoint::ScopedFailpoints chaos("seed=5; jit.dlopen=error(1)");
    PrimFunc func = matmul(10, 10, 10);
    std::vector<runtime::NDArray> args = seededArgs(func);
    std::vector<runtime::NDArray*> arg_ptrs = ptrs(args);
    runtime::execute(func, arg_ptrs);
    EXPECT_GE(runtime::jitStats().vm_fallbacks, 1u);
}

TEST_F(JitTest, MissingToolchainFallsBackToVm)
{
    ScopedEnv cc("TENSORIR_CC", "/nonexistent/tensorir-cc");
    runtime::jitResetForTesting();
    EXPECT_FALSE(runtime::jitAvailable());
    EXPECT_EQ(runtime::jitCompile(matmul(8, 8, 8)), nullptr);

    runtime::ScopedEngine jit(runtime::Engine::kJit);
    PrimFunc func = matmul(10, 10, 10);
    std::vector<runtime::NDArray> args = seededArgs(func);
    std::vector<runtime::NDArray> tw_args = seededArgs(func);
    std::vector<runtime::NDArray*> arg_ptrs = ptrs(args);
    std::vector<runtime::NDArray*> tw_ptrs = ptrs(tw_args);
    runtime::execute(func, arg_ptrs);
    EXPECT_GE(runtime::jitStats().vm_fallbacks, 1u);
    runtime::Interpreter interp;
    interp.run(func, tw_ptrs);
    for (size_t i = 0; i < args.size(); ++i) {
        EXPECT_EQ(args[i].maxAbsDiff(tw_args[i]), 0.0);
    }
}

TEST_F(JitTest, FuelExhaustionRaisesTheEngineContractError)
{
    if (!runtime::jitAvailable()) {
        GTEST_SKIP() << "no working C compiler for the JIT tier";
    }
    PrimFunc func = matmul(8, 8, 8);
    std::shared_ptr<const runtime::JitModule> mod =
        runtime::jitCompile(func);
    ASSERT_NE(mod, nullptr);
    std::vector<runtime::NDArray> args = seededArgs(func);
    std::vector<runtime::NDArray*> arg_ptrs = ptrs(args);
    try {
        mod->run(arg_ptrs, uint64_t{1});
        FAIL() << "expected EvalError on fuel exhaustion";
    } catch (const runtime::EvalError& e) {
        EXPECT_STREQ(e.what(),
                     "interpreter step limit of 1 statements exceeded "
                     "(runaway program?)");
    }
    // 0 = unlimited, same as the other engines.
    EXPECT_NO_THROW(mod->run(arg_ptrs, uint64_t{0}));
}

TEST_F(JitTest, InjectedInterpFaultMatchesEngineContract)
{
    if (!runtime::jitAvailable()) {
        GTEST_SKIP() << "no working C compiler for the JIT tier";
    }
    PrimFunc func = matmul(8, 8, 8);
    std::shared_ptr<const runtime::JitModule> mod =
        runtime::jitCompile(func);
    ASSERT_NE(mod, nullptr);
    failpoint::ScopedFailpoints chaos("seed=9; interp.run=error(1)");
    std::vector<runtime::NDArray> args = seededArgs(func);
    std::vector<runtime::NDArray*> arg_ptrs = ptrs(args);
    try {
        mod->run(arg_ptrs);
        FAIL() << "expected the injected interp.run fault";
    } catch (const runtime::EvalError& e) {
        EXPECT_EQ(std::string(e.what()),
                  "injected interpreter fault (failpoint interp.run) "
                  "in " +
                      func->name);
    }
}

TEST_F(JitTest, TuneOptionsEngineDrivesNumericChecks)
{
    // TuneOptions::engine = "jit" routes the tuner's numeric
    // spot-checks through the native tier (with transparent VM
    // fallback when no toolchain exists, so this test is
    // environment-independent).
    workloads::OpSpec op = workloads::gmm(64, 64, 64);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneOptions options;
    options.population = 4;
    options.generations = 2;
    options.children_per_generation = 8;
    options.measured_per_generation = 4;
    options.seed = 33;
    options.numeric_check_topk = 2;
    options.engine = "jit";
    meta::TuneResult result =
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR);
    EXPECT_GT(result.trials_measured, 0);
    // The override is scoped to the tune: the ambient engine is back
    // to the default afterwards.
    EXPECT_EQ(runtime::selectedEngine(), runtime::Engine::kVm);

    // A typo'd engine name must fail loudly, not silently change
    // engines.
    options.engine = "native";
    EXPECT_THROW(
        meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR),
        FatalError);
}

} // namespace
} // namespace tir
