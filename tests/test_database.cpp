/**
 * @file
 * Structural hashing and tuning-database tests, including the §5.2
 * record-caching behaviour: a database hit replays a stored schedule
 * with one measurement instead of a search.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ir/structural_hash.h"
#include "meta/database.h"
#include "meta/search.h"
#include "support/double_bits.h"
#include "workloads/workloads.h"

#include "test_util.h"

namespace tir {
namespace {

/** A valid serialized record header in the current format:
 *  `record <hash> <bits> <decimal> <sketch> [name]`. */
std::string
recordHeader(uint64_t hash, double latency, const std::string& sketch,
             const std::string& name = "")
{
    std::ostringstream os;
    os << "record " << hash << " " << support::doubleBitsHex(latency)
       << " " << support::doubleReadable(latency) << " " << sketch;
    if (!name.empty()) os << " " << name;
    os << "\n";
    return os.str();
}

TEST(StructuralHashTest, AlphaEquivalentProgramsHashEqual)
{
    // Two structurally identical matmuls built separately (different
    // variable/buffer objects) must hash identically.
    PrimFunc a = testutil::matmul(16, 16, 16);
    PrimFunc b = testutil::matmul(16, 16, 16);
    EXPECT_NE(a, b);
    EXPECT_EQ(structuralHash(a), structuralHash(b));
}

TEST(StructuralHashTest, DifferentShapesHashDifferently)
{
    EXPECT_NE(structuralHash(testutil::matmul(16, 16, 16)),
              structuralHash(testutil::matmul(16, 16, 32)));
}

TEST(StructuralHashTest, DifferentDtypesHashDifferently)
{
    EXPECT_NE(
        structuralHash(testutil::matmul(8, 8, 8, DataType::f32())),
        structuralHash(testutil::matmul(8, 8, 8, DataType::f16())));
}

TEST(StructuralHashTest, SchedulingChangesTheHash)
{
    PrimFunc func = testutil::matmul(16, 16, 16);
    Schedule sch(func);
    std::vector<Var> loops = sch.getLoops("C");
    sch.split(loops[0], {4, 4});
    EXPECT_NE(structuralHash(func), structuralHash(sch.func()));
}

TEST(StructuralHashTest, ExprHashing)
{
    Var x = var("x");
    Var y = var("y");
    EXPECT_EQ(structuralHash(Expr(x) + 1), structuralHash(Expr(y) + 1));
    EXPECT_NE(structuralHash(Expr(x) + 1), structuralHash(Expr(x) + 2));
    EXPECT_NE(structuralHash(Expr(x) + 1), structuralHash(Expr(x) * 1));
}

TEST(DatabaseTest, CommitAndLookup)
{
    meta::TuningDatabase db;
    PrimFunc func = testutil::matmul(32, 32, 32);
    EXPECT_FALSE(db.lookup(func).has_value());

    meta::TuneRecord record;
    record.workload_hash = structuralHash(func);
    record.workload_name = "matmul";
    record.latency_us = 12.5;
    record.sketch = "tensor";
    db.commit(record);
    ASSERT_TRUE(db.lookup(func).has_value());
    EXPECT_DOUBLE_EQ(db.lookup(func)->latency_us, 12.5);
}

TEST(DatabaseTest, CommitKeepsBest)
{
    meta::TuningDatabase db;
    meta::TuneRecord record;
    record.workload_hash = 42;
    record.latency_us = 10;
    db.commit(record);
    record.latency_us = 20; // worse: ignored
    db.commit(record);
    EXPECT_DOUBLE_EQ(db.lookup(42)->latency_us, 10);
    record.latency_us = 5; // better: replaces
    db.commit(record);
    EXPECT_DOUBLE_EQ(db.lookup(42)->latency_us, 5);
}

TEST(DatabaseTest, SerializeRoundTrips)
{
    meta::TuningDatabase db;
    meta::TuneRecord record;
    record.workload_hash = 1234567;
    record.workload_name = "gmm";
    record.latency_us = 3.25;
    record.sketch = "tensor";
    Decision tile;
    tile.kind = Decision::Kind::kPerfectTile;
    tile.extent = 64;
    tile.number = 3;
    tile.max_innermost = 8;
    tile.values = {4, 4, 4};
    Decision cat;
    cat.kind = Decision::Kind::kCategorical;
    cat.num_candidates = 4;
    cat.values = {2};
    record.decisions = {tile, cat};
    db.commit(record);

    meta::TuningDatabase restored =
        meta::TuningDatabase::deserialize(db.serialize());
    ASSERT_EQ(restored.size(), 1u);
    auto got = restored.lookup(1234567);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->workload_name, "gmm");
    EXPECT_DOUBLE_EQ(got->latency_us, 3.25);
    ASSERT_EQ(got->decisions.size(), 2u);
    EXPECT_EQ(got->decisions[0].values, (std::vector<int64_t>{4, 4, 4}));
    EXPECT_EQ(got->decisions[1].kind, Decision::Kind::kCategorical);
}

TEST(DatabaseTest, SerializeRoundTripIsByteIdentical)
{
    // Regression: latencies used to be written at the default ostream
    // precision (6 significant digits), so any latency that does not
    // fit — 0.1, a measured 1234.5678901 µs, 100/3 — came back
    // slightly different after save/load. That could flip commit()'s
    // improve-comparison against a fresh result, silently replacing a
    // faster schedule. The format now writes the IEEE-754 bit pattern,
    // so serialize(deserialize(serialize(db))) is byte-identical and
    // every latency round-trips exactly.
    meta::TuningDatabase db;
    const double awkward[] = {0.1, 1234.5678901, 100.0 / 3.0,
                              1e-300, 7.0};
    uint64_t hash = 1;
    for (double latency : awkward) {
        meta::TuneRecord record;
        record.workload_hash = hash++;
        record.workload_name = "wl";
        record.latency_us = latency;
        record.sketch = "tensor";
        Decision tile;
        tile.kind = Decision::Kind::kPerfectTile;
        tile.extent = 16;
        tile.number = 2;
        tile.max_innermost = 4;
        tile.values = {4, 4};
        record.decisions = {tile};
        db.commit(record);
    }

    std::string first = db.serialize();
    meta::TuningDatabase restored =
        meta::TuningDatabase::deserialize(first);
    EXPECT_EQ(restored.serialize(), first);

    hash = 1;
    for (double latency : awkward) {
        auto got = restored.lookup(hash++);
        ASSERT_TRUE(got.has_value());
        // Exact, not near: the bit pattern is authoritative.
        EXPECT_EQ(got->latency_us, latency);
    }
}

TEST(DatabaseTest, WorkloadNamesWithSpacesRoundTrip)
{
    // Regression: deserialize used to read the workload name with
    // operator>>, so a name like "fused conv2d relu" consumed only
    // "fused" and the leftover tokens corrupted the parse of the
    // following lines. Names now sit at end-of-line and are read with
    // getline.
    meta::TuningDatabase db;
    meta::TuneRecord record;
    record.workload_hash = 77;
    record.workload_name = "fused conv2d relu 3x3 pad=1";
    record.latency_us = 4.5;
    record.sketch = "tensor";
    db.commit(record);
    meta::TuneRecord second;
    second.workload_hash = 78;
    second.workload_name = "plain";
    second.latency_us = 6.0;
    db.commit(second);

    std::string text = db.serialize();
    // Strict mode: a spaced name must not be "damage".
    meta::TuningDatabase restored =
        meta::TuningDatabase::deserialize(text);
    ASSERT_EQ(restored.size(), 2u);
    EXPECT_EQ(restored.lookup(77)->workload_name,
              "fused conv2d relu 3x3 pad=1");
    EXPECT_EQ(restored.lookup(78)->workload_name, "plain");
    // And the round-trip stays byte-identical.
    EXPECT_EQ(restored.serialize(), text);
}

TEST(DatabaseTest, TolerantParseDoesNotCountStrayGarbageAsDrops)
{
    // Regression: the tolerant parser used to count a "dropped record"
    // for stray garbage before any `record` header ever appeared, so
    // LoadReport::dropped over-reported damage (callers alert on it).
    // A drop must mean a record actually lost: junk ahead of the first
    // header or debris between complete records just resyncs.
    std::string text = "# comment-ish junk\nmore junk here\n" +
                       recordHeader(1, 1.0, "tensor", "ok") + "end\n" +
                       "debris between records\n" +
                       recordHeader(2, 2.0, "loop") + "end\n";
    meta::LoadReport report;
    meta::TuningDatabase restored =
        meta::TuningDatabase::deserialize(text, &report);
    EXPECT_EQ(report.loaded, 2);
    EXPECT_EQ(report.dropped, 0);
    EXPECT_EQ(restored.size(), 2u);

    // Garbage *inside* a record still costs that record exactly one
    // drop — the boundary the fix must not move.
    std::string torn = recordHeader(3, 3.0, "tensor") +
                       "garbage inside\nend\n";
    meta::LoadReport torn_report;
    meta::TuningDatabase torn_restored =
        meta::TuningDatabase::deserialize(torn, &torn_report);
    EXPECT_EQ(torn_report.loaded, 0);
    EXPECT_EQ(torn_report.dropped, 1);
    EXPECT_EQ(torn_restored.size(), 0u);
}

TEST(DatabaseTest, RejectsMalformedText)
{
    EXPECT_THROW(meta::TuningDatabase::deserialize("garbage here"),
                 FatalError);
    EXPECT_THROW(
        meta::TuningDatabase::deserialize(recordHeader(1, 2.0, "tensor")),
        FatalError); // unterminated
    EXPECT_THROW(
        meta::TuningDatabase::deserialize(
            "record 1 not_a_bit_pattern 2 tensor x\nend\n"),
        FatalError); // damaged latency bits
}

TEST(DatabaseTest, TolerantParseRecoversFromTruncatedTail)
{
    // The crash-mid-save case: the file ends inside a record. The
    // tolerant parse keeps every complete record and counts the torn
    // one as dropped instead of aborting the session.
    meta::TuningDatabase db;
    meta::TuneRecord record;
    record.workload_hash = 11;
    record.workload_name = "intact";
    record.latency_us = 2.5;
    Decision tile;
    tile.kind = Decision::Kind::kPerfectTile;
    tile.extent = 32;
    tile.number = 2;
    tile.max_innermost = 4;
    tile.values = {8, 4};
    record.decisions = {tile};
    db.commit(record);
    std::string text = db.serialize();
    // Append a record whose `end` (and part of its decision line) was
    // lost to the crash.
    text += recordHeader(22, 9.0, "loop", "torn") + "  tile 64 3";

    meta::LoadReport report;
    meta::TuningDatabase restored =
        meta::TuningDatabase::deserialize(text, &report);
    EXPECT_EQ(report.loaded, 1);
    EXPECT_EQ(report.dropped, 1);
    ASSERT_EQ(restored.size(), 1u);
    auto got = restored.lookup(11);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->workload_name, "intact");
    ASSERT_EQ(got->decisions.size(), 1u);
    EXPECT_EQ(got->decisions[0].values, (std::vector<int64_t>{8, 4}));
    // The same text still fails the strict (in-memory round-trip) mode.
    EXPECT_THROW(meta::TuningDatabase::deserialize(text), FatalError);
}

TEST(DatabaseTest, TolerantParseResyncsAfterCorruptMiddleRecord)
{
    // Damage in the middle of the file: the parse drops the damaged
    // record, resyncs at the next `record` header, and keeps both
    // neighbours.
    std::string text =
        recordHeader(1, 1.0, "tensor", "first") + "end\n" +
        "record 2 oops_not_a_number 2 loop damaged\n"
        "  tile 4 1 2 0 4\nend\n" +
        recordHeader(3, 3.0, "tensor", "last") + "end\n";
    meta::LoadReport report;
    meta::TuningDatabase restored =
        meta::TuningDatabase::deserialize(text, &report);
    EXPECT_EQ(report.loaded, 2);
    EXPECT_EQ(report.dropped, 1);
    EXPECT_EQ(restored.size(), 2u);
    EXPECT_TRUE(restored.lookup(1).has_value());
    EXPECT_FALSE(restored.lookup(2).has_value());
    EXPECT_TRUE(restored.lookup(3).has_value());
}

TEST(DatabaseTest, LoadSkipsAndCountsCorruptRecords)
{
    // load() is always tolerant: a database file that crossed a crash
    // keeps its intact records.
    std::string path =
        ::testing::TempDir() + "/tensorir_db_torn_test.txt";
    {
        std::ofstream out(path);
        out << recordHeader(5, 5.0, "tensor", "kept") << "end\n"
            << recordHeader(6, 6.0, "loop", "torn") << "  tile 64";
    }
    meta::LoadReport report;
    meta::TuningDatabase loaded =
        meta::TuningDatabase::load(path, &report);
    EXPECT_EQ(report.loaded, 1);
    EXPECT_EQ(report.dropped, 1);
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_TRUE(loaded.lookup(5).has_value());
    std::remove(path.c_str());
}

TEST(DatabaseTest, SaveAndLoadFile)
{
    meta::TuningDatabase db;
    meta::TuneRecord record;
    record.workload_hash = 99;
    record.latency_us = 7;
    db.commit(record);
    std::string path = ::testing::TempDir() + "/tensorir_db_test.txt";
    db.save(path);
    meta::TuningDatabase loaded = meta::TuningDatabase::load(path);
    EXPECT_EQ(loaded.size(), 1u);
    std::remove(path.c_str());
}

TEST(DatabaseTest, SaveReportsWriteFailures)
{
    // Regression: save() used to check the stream only before writing,
    // so a disk that filled up mid-write (or any I/O error surfacing
    // once the buffered bytes were flushed) silently left a truncated
    // or empty database behind. /dev/full reproduces exactly that:
    // opening succeeds, the flush fails with ENOSPC.
    std::ofstream probe("/dev/full");
    if (!probe.good()) GTEST_SKIP() << "/dev/full not available";
    probe.close();

    meta::TuningDatabase db;
    meta::TuneRecord record;
    record.workload_hash = 7;
    record.workload_name = "doomed";
    record.latency_us = 1.0;
    db.commit(record);
    EXPECT_THROW(db.save("/dev/full"), FatalError);
    // The pre-existing open check still catches bad paths.
    EXPECT_THROW(db.save("/nonexistent-dir-tensorir/db.txt"),
                 FatalError);
}

TEST(DatabaseTest, AutoTuneReplaysRecords)
{
    // First tune populates the database; the second call replays with a
    // single measurement and reproduces the same latency.
    workloads::OpSpec op = workloads::gmm(256, 256, 256);
    hwsim::GpuDevice gpu;
    meta::TuningDatabase db;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneOptions options;
    options.population = 4;
    options.generations = 2;

    meta::TuneResult first = meta::autoTune(
        task, gpu, options, meta::TunerStyle::kTensorIR, &db);
    EXPECT_FALSE(first.from_database);
    EXPECT_EQ(db.size(), 1u);

    meta::TuneResult second = meta::autoTune(
        task, gpu, options, meta::TunerStyle::kTensorIR, &db);
    EXPECT_TRUE(second.from_database);
    EXPECT_EQ(second.trials_measured, 1);
    EXPECT_NEAR(second.best_latency_us, first.best_latency_us, 1e-9);
    // Replay is drastically cheaper than searching.
    EXPECT_LT(second.tuning_cost_us, first.tuning_cost_us / 10);
}

TEST(DatabaseTest, ReplayedScheduleIsNumericallyCorrect)
{
    workloads::OpSpec op = workloads::gmm(
        32, 32, 32, DataType::f16(), DataType::f16());
    hwsim::GpuDevice gpu;
    meta::TuningDatabase db;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneOptions options;
    options.population = 3;
    options.generations = 1;
    meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR,
                   &db);
    // Round-trip the database through text, then replay from it.
    meta::TuningDatabase restored =
        meta::TuningDatabase::deserialize(db.serialize());
    meta::TuneResult replayed = meta::autoTune(
        task, gpu, options, meta::TunerStyle::kTensorIR, &restored);
    ASSERT_TRUE(replayed.from_database);
    testutil::expectSameResults(replayed.best_func, op.func, 1, 1e-6);
}

} // namespace
} // namespace tir
