/**
 * @file
 * Structural hashing and tuning-database tests, including the §5.2
 * record-caching behaviour: a database hit replays a stored schedule
 * with one measurement instead of a search.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ir/structural_hash.h"
#include "meta/database.h"
#include "meta/search.h"
#include "workloads/workloads.h"

#include "test_util.h"

namespace tir {
namespace {

TEST(StructuralHashTest, AlphaEquivalentProgramsHashEqual)
{
    // Two structurally identical matmuls built separately (different
    // variable/buffer objects) must hash identically.
    PrimFunc a = testutil::matmul(16, 16, 16);
    PrimFunc b = testutil::matmul(16, 16, 16);
    EXPECT_NE(a, b);
    EXPECT_EQ(structuralHash(a), structuralHash(b));
}

TEST(StructuralHashTest, DifferentShapesHashDifferently)
{
    EXPECT_NE(structuralHash(testutil::matmul(16, 16, 16)),
              structuralHash(testutil::matmul(16, 16, 32)));
}

TEST(StructuralHashTest, DifferentDtypesHashDifferently)
{
    EXPECT_NE(
        structuralHash(testutil::matmul(8, 8, 8, DataType::f32())),
        structuralHash(testutil::matmul(8, 8, 8, DataType::f16())));
}

TEST(StructuralHashTest, SchedulingChangesTheHash)
{
    PrimFunc func = testutil::matmul(16, 16, 16);
    Schedule sch(func);
    std::vector<Var> loops = sch.getLoops("C");
    sch.split(loops[0], {4, 4});
    EXPECT_NE(structuralHash(func), structuralHash(sch.func()));
}

TEST(StructuralHashTest, ExprHashing)
{
    Var x = var("x");
    Var y = var("y");
    EXPECT_EQ(structuralHash(Expr(x) + 1), structuralHash(Expr(y) + 1));
    EXPECT_NE(structuralHash(Expr(x) + 1), structuralHash(Expr(x) + 2));
    EXPECT_NE(structuralHash(Expr(x) + 1), structuralHash(Expr(x) * 1));
}

TEST(DatabaseTest, CommitAndLookup)
{
    meta::TuningDatabase db;
    PrimFunc func = testutil::matmul(32, 32, 32);
    EXPECT_FALSE(db.lookup(func).has_value());

    meta::TuneRecord record;
    record.workload_hash = structuralHash(func);
    record.workload_name = "matmul";
    record.latency_us = 12.5;
    record.sketch = "tensor";
    db.commit(record);
    ASSERT_TRUE(db.lookup(func).has_value());
    EXPECT_DOUBLE_EQ(db.lookup(func)->latency_us, 12.5);
}

TEST(DatabaseTest, CommitKeepsBest)
{
    meta::TuningDatabase db;
    meta::TuneRecord record;
    record.workload_hash = 42;
    record.latency_us = 10;
    db.commit(record);
    record.latency_us = 20; // worse: ignored
    db.commit(record);
    EXPECT_DOUBLE_EQ(db.lookup(42)->latency_us, 10);
    record.latency_us = 5; // better: replaces
    db.commit(record);
    EXPECT_DOUBLE_EQ(db.lookup(42)->latency_us, 5);
}

TEST(DatabaseTest, SerializeRoundTrips)
{
    meta::TuningDatabase db;
    meta::TuneRecord record;
    record.workload_hash = 1234567;
    record.workload_name = "gmm";
    record.latency_us = 3.25;
    record.sketch = "tensor";
    Decision tile;
    tile.kind = Decision::Kind::kPerfectTile;
    tile.extent = 64;
    tile.number = 3;
    tile.max_innermost = 8;
    tile.values = {4, 4, 4};
    Decision cat;
    cat.kind = Decision::Kind::kCategorical;
    cat.num_candidates = 4;
    cat.values = {2};
    record.decisions = {tile, cat};
    db.commit(record);

    meta::TuningDatabase restored =
        meta::TuningDatabase::deserialize(db.serialize());
    ASSERT_EQ(restored.size(), 1u);
    auto got = restored.lookup(1234567);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->workload_name, "gmm");
    EXPECT_DOUBLE_EQ(got->latency_us, 3.25);
    ASSERT_EQ(got->decisions.size(), 2u);
    EXPECT_EQ(got->decisions[0].values, (std::vector<int64_t>{4, 4, 4}));
    EXPECT_EQ(got->decisions[1].kind, Decision::Kind::kCategorical);
}

TEST(DatabaseTest, RejectsMalformedText)
{
    EXPECT_THROW(meta::TuningDatabase::deserialize("garbage here"),
                 FatalError);
    EXPECT_THROW(
        meta::TuningDatabase::deserialize("record 1 2.0 tensor x\n"),
        FatalError); // unterminated
}

TEST(DatabaseTest, SaveAndLoadFile)
{
    meta::TuningDatabase db;
    meta::TuneRecord record;
    record.workload_hash = 99;
    record.latency_us = 7;
    db.commit(record);
    std::string path = ::testing::TempDir() + "/tensorir_db_test.txt";
    db.save(path);
    meta::TuningDatabase loaded = meta::TuningDatabase::load(path);
    EXPECT_EQ(loaded.size(), 1u);
    std::remove(path.c_str());
}

TEST(DatabaseTest, SaveReportsWriteFailures)
{
    // Regression: save() used to check the stream only before writing,
    // so a disk that filled up mid-write (or any I/O error surfacing
    // once the buffered bytes were flushed) silently left a truncated
    // or empty database behind. /dev/full reproduces exactly that:
    // opening succeeds, the flush fails with ENOSPC.
    std::ofstream probe("/dev/full");
    if (!probe.good()) GTEST_SKIP() << "/dev/full not available";
    probe.close();

    meta::TuningDatabase db;
    meta::TuneRecord record;
    record.workload_hash = 7;
    record.workload_name = "doomed";
    record.latency_us = 1.0;
    db.commit(record);
    EXPECT_THROW(db.save("/dev/full"), FatalError);
    // The pre-existing open check still catches bad paths.
    EXPECT_THROW(db.save("/nonexistent-dir-tensorir/db.txt"),
                 FatalError);
}

TEST(DatabaseTest, AutoTuneReplaysRecords)
{
    // First tune populates the database; the second call replays with a
    // single measurement and reproduces the same latency.
    workloads::OpSpec op = workloads::gmm(256, 256, 256);
    hwsim::GpuDevice gpu;
    meta::TuningDatabase db;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneOptions options;
    options.population = 4;
    options.generations = 2;

    meta::TuneResult first = meta::autoTune(
        task, gpu, options, meta::TunerStyle::kTensorIR, &db);
    EXPECT_FALSE(first.from_database);
    EXPECT_EQ(db.size(), 1u);

    meta::TuneResult second = meta::autoTune(
        task, gpu, options, meta::TunerStyle::kTensorIR, &db);
    EXPECT_TRUE(second.from_database);
    EXPECT_EQ(second.trials_measured, 1);
    EXPECT_NEAR(second.best_latency_us, first.best_latency_us, 1e-9);
    // Replay is drastically cheaper than searching.
    EXPECT_LT(second.tuning_cost_us, first.tuning_cost_us / 10);
}

TEST(DatabaseTest, ReplayedScheduleIsNumericallyCorrect)
{
    workloads::OpSpec op = workloads::gmm(
        32, 32, 32, DataType::f16(), DataType::f16());
    hwsim::GpuDevice gpu;
    meta::TuningDatabase db;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    meta::TuneOptions options;
    options.population = 3;
    options.generations = 1;
    meta::autoTune(task, gpu, options, meta::TunerStyle::kTensorIR,
                   &db);
    // Round-trip the database through text, then replay from it.
    meta::TuningDatabase restored =
        meta::TuningDatabase::deserialize(db.serialize());
    meta::TuneResult replayed = meta::autoTune(
        task, gpu, options, meta::TunerStyle::kTensorIR, &restored);
    ASSERT_TRUE(replayed.from_database);
    testutil::expectSameResults(replayed.best_func, op.func, 1, 1e-6);
}

} // namespace
} // namespace tir
