/**
 * @file
 * Blockize + tensorize tests: the Figure 8 pipeline done manually. A
 * 64x64x64 matmul is tiled to the intrinsic shape, blockized, and
 * tensorized with the synthetic 4x4x4 dot-product accelerator; the
 * rewritten program must compute identical results. Also checks the
 * §4.1/§3.3 validation failures (dtype and storage-scope constraints).
 */
#include <gtest/gtest.h>

#include "intrin/tensor_intrin.h"
#include "ir/printer.h"
#include "ir/transform.h"
#include "tir/schedule.h"

#include "test_util.h"

namespace tir {
namespace {

using testutil::expectSameResults;
using testutil::matmul;

/** Tile a 3-nest matmul to (4,4,4) and blockize the inner tile. */
std::string
tileAndBlockize(Schedule& sch, int64_t tile = 4)
{
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(loops[0], {-1, tile});
    std::vector<Var> j_split = sch.split(loops[1], {-1, tile});
    std::vector<Var> k_split = sch.split(loops[2], {-1, tile});
    sch.reorder({i_split[0], j_split[0], k_split[0], i_split[1],
                 j_split[1], k_split[1]});
    sch.decomposeReduction("C", k_split[0]);
    return sch.blockize(i_split[1]);
}

TEST(BlockizeTest, CreatesOuterBlockWithTileSignature)
{
    Schedule sch(matmul(64, 64, 64));
    std::string outer = tileAndBlockize(sch);
    EXPECT_EQ(outer, "C_o");
    BlockPtr outer_block = sch.getBlock(outer);
    ASSERT_EQ(outer_block->iter_vars.size(), 3u);
    EXPECT_EQ(constIntOr(outer_block->iter_vars[0].dom.extent, -1), 16);
    EXPECT_EQ(outer_block->iter_vars[2].type, IterType::kReduce);
    // The outer block reads 4x4 tiles of C (update self-read), A and B.
    ASSERT_EQ(outer_block->reads.size(), 3u);
    for (const BufferRegion& br : outer_block->reads) {
        EXPECT_EQ(constIntOr(br.region[0].extent, -1), 4);
        EXPECT_EQ(constIntOr(br.region[1].extent, -1), 4);
    }
    sch.validateAffineBindings();
}

TEST(BlockizeTest, PreservesSemantics)
{
    PrimFunc original = matmul(64, 64, 64);
    Schedule sch(original);
    tileAndBlockize(sch);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(BlockizeTest, RejectsUnitializedReduction)
{
    Schedule sch(matmul(16, 16, 16));
    std::vector<Var> loops = sch.getLoops("C");
    // Without decompose_reduction first, blockize must refuse.
    EXPECT_THROW(sch.blockize(loops[0]), FatalError);
}

TEST(BlockizeTest, RejectsNonDivisibleTiles)
{
    Schedule sch(matmul(20, 20, 20));
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(loops[0], {-1, 3}); // 21 > 20
    std::vector<Var> j_split = sch.split(loops[1], {4, 5});
    sch.reorder({i_split[0], j_split[0], i_split[1], j_split[1]});
    std::vector<Var> k = sch.getLoops("C");
    sch.decomposeReduction("C", k.back());
    EXPECT_THROW(sch.blockize(i_split[1]), FatalError);
}

TEST(TensorizeTest, MatmulWithSyntheticAccel)
{
    registerBuiltinIntrinsics();
    PrimFunc original = matmul(64, 64, 64);
    Schedule sch(original);
    std::string outer = tileAndBlockize(sch);
    sch.tensorize(outer, "accel_dot_4x4x4");

    // The outer block body is now the opaque intrinsic call.
    std::string text = funcToString(sch.func());
    EXPECT_NE(text.find("accel.tile_mma_4x4x4"), std::string::npos);
    EXPECT_NE(text.find("tensor_intrin"), std::string::npos);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(TensorizeTest, NonSquareWorkload)
{
    registerBuiltinIntrinsics();
    PrimFunc original = matmul(32, 16, 64);
    Schedule sch(original);
    std::string outer = tileAndBlockize(sch);
    sch.tensorize(outer, "accel_dot_4x4x4");
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(TensorizeTest, RejectsWrongDtype)
{
    registerBuiltinIntrinsics();
    // f32 workload cannot use the f16 Tensor Core intrinsic.
    Schedule sch(matmul(64, 64, 64));
    std::string outer = tileAndBlockize(sch, 16);
    EXPECT_THROW(sch.tensorize(outer, "wmma_16x16x16_f16"), FatalError);
}

TEST(TensorizeTest, RejectsWrongScope)
{
    registerBuiltinIntrinsics();
    // f16 workload in global memory: the wmma intrinsic requires
    // wmma.matrix_a/b/accumulator scopes, so the match must fail with a
    // scope diagnostic.
    Schedule sch(matmul(64, 64, 64, DataType::f16()));
    std::string outer = tileAndBlockize(sch, 16);
    try {
        sch.tensorize(outer, "wmma_16x16x16_f16");
        FAIL() << "expected scope mismatch";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("scope"), std::string::npos);
    }
}

TEST(TensorizeTest, RejectsWrongTileShape)
{
    registerBuiltinIntrinsics();
    Schedule sch(matmul(64, 64, 64));
    std::string outer = tileAndBlockize(sch, 8); // 8x8x8 tile vs 4x4x4
    EXPECT_THROW(sch.tensorize(outer, "accel_dot_4x4x4"), FatalError);
}

TEST(TensorizeTest, WmmaWithStagedScopes)
{
    registerBuiltinIntrinsics();
    // Full Tensor-Core style pipeline: stage A and B into wmma register
    // scopes, stage the C tile into the accumulator scope, then
    // tensorize with the 16x16x16 intrinsic.
    PrimFunc original = matmul(64, 64, 64, DataType::f16());
    Schedule sch(original);
    std::string a_frag = sch.cacheRead("C", 0, "wmma.matrix_a");
    std::string b_frag = sch.cacheRead("C", 1, "wmma.matrix_b");
    std::string c_frag = sch.cacheWrite("C", "wmma.accumulator");
    std::string outer = tileAndBlockize(sch, 16);
    sch.tensorize(outer, "wmma_16x16x16_f16");
    std::string text = funcToString(sch.func());
    EXPECT_NE(text.find("wmma.mma_sync_16x16x16"), std::string::npos);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original, 1, 1e-6);
    EXPECT_TRUE(sch.hasBlock(a_frag));
    EXPECT_TRUE(sch.hasBlock(b_frag));
    EXPECT_TRUE(sch.hasBlock(c_frag));
}

TEST(TensorizeTest, ArmSdotInt8)
{
    registerBuiltinIntrinsics();
    // int8 -> int32 matmul tensorized with the 1x1x4 sdot intrinsic.
    te::Builder builder;
    Buffer a = builder.placeholder("A", {16, 32}, DataType::i8());
    Buffer b = builder.placeholder("B", {32, 16}, DataType::i8());
    Buffer c = builder.sumReduce(
        "C", {16, 16}, {32},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return cast(DataType::i32(), bufferLoad(a, {s[0], r[0]})) *
                   cast(DataType::i32(), bufferLoad(b, {r[0], s[1]}));
        },
        DataType::i32());
    PrimFunc original = builder.build("qmatmul", {c});

    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(loops[0], {-1, 1});
    std::vector<Var> j_split = sch.split(loops[1], {-1, 1});
    std::vector<Var> k_split = sch.split(loops[2], {-1, 4});
    sch.reorder({i_split[0], j_split[0], k_split[0], i_split[1],
                 j_split[1], k_split[1]});
    sch.decomposeReduction("C", k_split[0]);
    std::string outer = sch.blockize(i_split[1]);
    sch.tensorize(outer, "arm_sdot_1x1x4");
    std::string text = funcToString(sch.func());
    EXPECT_NE(text.find("arm.sdot_1x1x4"), std::string::npos);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original, 1, 0.0);
}

TEST(TensorIntrinRegistryTest, BuiltinsPresent)
{
    registerBuiltinIntrinsics();
    EXPECT_TRUE(TensorIntrin::exists("accel_dot_4x4x4"));
    EXPECT_TRUE(TensorIntrin::exists("wmma_16x16x16_f16"));
    EXPECT_TRUE(TensorIntrin::exists("arm_sdot_1x1x4"));
    EXPECT_FALSE(TensorIntrin::exists("nonexistent"));
    EXPECT_THROW(TensorIntrin::get("nonexistent"), FatalError);
    const TensorIntrin& wmma = TensorIntrin::get("wmma_16x16x16_f16");
    EXPECT_EQ(wmma.macs, 16 * 16 * 16);
    EXPECT_EQ(wmma.exec_scope, "warp");
    EXPECT_GE(TensorIntrin::list().size(), 4u);
}

TEST(TensorIntrinRegistryTest, CustomIntrinRoundTrips)
{
    // A user-defined 2x2x2 intrinsic goes through the same machinery.
    registerBuiltinIntrinsics();
    TensorIntrin custom = makeMatmulIntrin(
        "custom_2x2x2", 2, 2, 2, DataType::f32(), DataType::f32(),
        "global", "global", "global", "accel.tile_mma_2x2x2", "dot4",
        "thread");
    TensorIntrin::registerIntrin(custom);
    runtime::Interpreter::registerIntrinsic(
        "accel.tile_mma_2x2x2",
        [](runtime::ExecContext& interp, const CallNode& call) {
            runtime::BufferRef c = interp.resolvePtr(call.args[0]);
            runtime::BufferRef a = interp.resolvePtr(call.args[1]);
            runtime::BufferRef b = interp.resolvePtr(call.args[2]);
            int64_t sc = c.buffer->shapeInt(c.buffer->ndim() - 1);
            int64_t sa = a.buffer->shapeInt(a.buffer->ndim() - 1);
            int64_t sb = b.buffer->shapeInt(b.buffer->ndim() - 1);
            for (int64_t i = 0; i < 2; ++i) {
                for (int64_t j = 0; j < 2; ++j) {
                    for (int64_t k = 0; k < 2; ++k) {
                        c.array->at(c.offset + i * sc + j) +=
                            a.array->at(a.offset + i * sa + k) *
                            b.array->at(b.offset + k * sb + j);
                    }
                }
            }
        });

    PrimFunc original = matmul(8, 8, 8);
    Schedule sch(original);
    std::string outer = tileAndBlockize(sch, 2);
    sch.tensorize(outer, "custom_2x2x2");
    expectSameResults(sch.func(), original);
}

} // namespace
} // namespace tir
