/**
 * @file
 * The tracing subsystem's contract (support/trace.h): disabled means
 * no-op, a session produces well-formed Chrome trace-event JSON
 * covering the instrumented pipeline, and tracing never perturbs
 * tuning — results are byte-identical with a session on or off.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "meta/search.h"
#include "support/trace.h"
#include "workloads/workloads.h"

namespace tir {
namespace {

meta::TuneOptions
demoOptions()
{
    meta::TuneOptions options;
    options.population = 8;
    options.generations = 3;
    options.children_per_generation = 16;
    options.measured_per_generation = 8;
    options.seed = 17;
    options.parallelism = 2;
    return options;
}

meta::TuneResult
tuneOnce(const meta::TuneOptions& options)
{
    workloads::OpSpec op = workloads::gmm(128, 128, 128);
    hwsim::GpuDevice gpu;
    meta::TuneTask task{op.func, "C", "gpu", {"wmma_16x16x16_f16"}};
    return meta::autoTune(task, gpu, options,
                          meta::TunerStyle::kTensorIR);
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing trace file " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

TEST(TraceTest, DisabledByDefault)
{
    // No TENSORIR_TRACE in the test environment, no explicit start:
    // every hook must be a no-op.
    ASSERT_FALSE(trace::enabled());
    EXPECT_EQ(trace::summaryText(), "");
    {
        trace::Span span("never.recorded");
        span.addArg(trace::arg("x", int64_t{1}));
        trace::counterAdd("never.counted", 1);
        trace::gauge("never.gauged", 1.0);
        trace::instant("never.instant");
    }
    EXPECT_FALSE(trace::enabled());
    EXPECT_EQ(trace::summaryText(), "");
}

TEST(TraceTest, AccumSpanAccumulatesWithoutSession)
{
    // The stage timings in TuneResult flow through AccumSpan, which
    // must keep working when no session is active.
    ASSERT_FALSE(trace::enabled());
    double seconds = 0;
    {
        trace::AccumSpan span("never.recorded", seconds);
    }
    EXPECT_GE(seconds, 0.0);
    double again = seconds;
    {
        trace::AccumSpan span("never.recorded", again);
    }
    EXPECT_GE(again, seconds);
}

TEST(TraceTest, SessionWritesChromeTraceJson)
{
    std::string path = ::testing::TempDir() + "/tensorir_trace.json";
    std::remove(path.c_str());
    meta::TuneOptions options = demoOptions();
    options.trace_path = path;
    meta::TuneResult result = tuneOnce(options);
    // The session closed when autoTune returned, but its roll-up was
    // captured first. (The meta.auto_tune span itself is still open at
    // capture time, so the summary reports the closed inner spans.)
    EXPECT_FALSE(trace::enabled());
    EXPECT_NE(result.trace_summary.find("search.run"),
              std::string::npos);
    EXPECT_NE(result.trace_summary.find("search.trials_measured"),
              std::string::npos);

    std::string text = readFile(path);
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    // Spans from every instrumented layer of the pipeline.
    for (const char* name :
         {"meta.auto_tune", "search.run", "search.generation",
          "candidate.instantiate", "candidate.analysis",
          "candidate.evaluate", "lower.to_loops"}) {
        EXPECT_NE(text.find(std::string("\"name\":\"") + name + "\""),
                  std::string::npos)
            << "trace is missing span " << name;
    }
    // Counter samples ("ph":"C") and thread metadata are present.
    EXPECT_NE(text.find("\"search.trials_measured\""),
              std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceTest, TracingIsObservationalOnly)
{
    // The determinism contract extends to tracing: a session on the
    // same seed changes nothing about the tuning outcome.
    meta::TuneResult plain = tuneOnce(demoOptions());

    std::string path =
        ::testing::TempDir() + "/tensorir_trace_determinism.json";
    std::remove(path.c_str());
    meta::TuneOptions traced_options = demoOptions();
    traced_options.trace_path = path;
    meta::TuneResult traced = tuneOnce(traced_options);
    std::remove(path.c_str());

    EXPECT_EQ(plain.best_latency_us, traced.best_latency_us);
    EXPECT_EQ(plain.best_sketch, traced.best_sketch);
    EXPECT_EQ(plain.history, traced.history);
    EXPECT_EQ(plain.trials_measured, traced.trials_measured);
    EXPECT_EQ(plain.invalid_filtered, traced.invalid_filtered);
    EXPECT_EQ(plain.race_filtered, traced.race_filtered);
    EXPECT_EQ(plain.bounds_filtered, traced.bounds_filtered);
    EXPECT_EQ(plain.memo_hits, traced.memo_hits);
    EXPECT_EQ(plain.tuning_cost_us, traced.tuning_cost_us);
    ASSERT_EQ(plain.best_decisions.size(), traced.best_decisions.size());
    for (size_t i = 0; i < plain.best_decisions.size(); ++i) {
        EXPECT_EQ(plain.best_decisions[i].values,
                  traced.best_decisions[i].values)
            << "decision " << i;
    }
    // Only the traced run carries a summary.
    EXPECT_TRUE(plain.trace_summary.empty());
    EXPECT_FALSE(traced.trace_summary.empty());
}

TEST(TraceTest, NestedSessionsComposeOutermostWins)
{
    std::string outer_path =
        ::testing::TempDir() + "/tensorir_trace_outer.json";
    std::string inner_path =
        ::testing::TempDir() + "/tensorir_trace_inner.json";
    std::remove(outer_path.c_str());
    std::remove(inner_path.c_str());
    {
        trace::SessionGuard outer(outer_path);
        ASSERT_TRUE(outer.owns());
        ASSERT_TRUE(trace::enabled());
        {
            // An inner guard (what autoTune opens for its trace_path)
            // must join the active session, not displace it.
            trace::SessionGuard inner(inner_path);
            EXPECT_FALSE(inner.owns());
            trace::Span span("nested.work");
        }
        // Inner guard closing must not have ended the outer session.
        EXPECT_TRUE(trace::enabled());
    }
    EXPECT_FALSE(trace::enabled());
    std::string text = readFile(outer_path);
    EXPECT_NE(text.find("\"nested.work\""), std::string::npos);
    // The inner path was never written.
    std::ifstream inner_file(inner_path);
    EXPECT_FALSE(inner_file.good());
    std::remove(outer_path.c_str());
}

TEST(TraceTest, CountersAggregateAcrossThreadsInSummary)
{
    std::string path =
        ::testing::TempDir() + "/tensorir_trace_counters.json";
    std::remove(path.c_str());
    {
        trace::SessionGuard session(path);
        ASSERT_TRUE(session.owns());
        trace::counterAdd("test.counter", 2);
        trace::counterAdd("test.counter", 3);
        trace::gauge("test.gauge", 1.5);
        trace::gauge("test.gauge", 2.5);
        std::string summary = trace::summaryText();
        EXPECT_NE(summary.find("test.counter"), std::string::npos);
        EXPECT_NE(summary.find("5"), std::string::npos);
        // Gauges report the latest sample.
        EXPECT_NE(summary.find("2.5"), std::string::npos);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace tir
