/**
 * @file
 * Workload-generator tests: every operator in the §5.1 suite must
 * compute the same values as a straightforward reference implementation
 * written directly against the input arrays.
 */
#include <gtest/gtest.h>

#include "codegen/c_codegen.h"
#include "lower/lower.h"
#include "runtime/interpreter.h"
#include "meta/search.h"
#include "tir/schedule.h"

#include "test_util.h"
#include "ir/transform.h"
#include "workloads/workloads.h"

namespace tir {
namespace {

using runtime::Interpreter;
using runtime::NDArray;

/** Run a workload's func on random inputs; returns all buffers. */
std::vector<NDArray>
runOp(const workloads::OpSpec& op, uint64_t seed = 3)
{
    Rng rng(seed);
    std::vector<NDArray> args;
    for (const Buffer& param : op.func->params) {
        std::vector<int64_t> shape;
        for (size_t d = 0; d < param->ndim(); ++d) {
            shape.push_back(param->shapeInt(d));
        }
        NDArray array(param->dtype, shape);
        array.fillRandom(rng, -2, 2);
        args.push_back(std::move(array));
    }
    std::vector<NDArray*> ptrs;
    for (auto& a : args) ptrs.push_back(&a);
    Interpreter interp;
    interp.run(op.func, ptrs);
    return args;
}

TEST(WorkloadTest, GmmMatchesReference)
{
    workloads::OpSpec op = workloads::gmm(5, 7, 9, DataType::f32(),
                                          DataType::f32());
    auto args = runOp(op);
    const NDArray& a = args[0];
    const NDArray& b = args[1];
    const NDArray& c = args[2];
    for (int64_t i = 0; i < 5; ++i) {
        for (int64_t j = 0; j < 7; ++j) {
            double expect = 0;
            for (int64_t k = 0; k < 9; ++k) {
                expect += a.at(i * 9 + k) * b.at(k * 7 + j);
            }
            ASSERT_NEAR(c.at(i * 7 + j), expect, 1e-9);
        }
    }
    EXPECT_EQ(op.macs, 5 * 7 * 9);
}

TEST(WorkloadTest, BatchMatmulMatchesReference)
{
    workloads::OpSpec op = workloads::batchMatmul(
        3, 4, 5, 6, DataType::f32(), DataType::f32());
    auto args = runOp(op);
    const NDArray& a = args[0];
    const NDArray& b = args[1];
    const NDArray& c = args[2];
    for (int64_t bi = 0; bi < 3; ++bi) {
        for (int64_t i = 0; i < 4; ++i) {
            for (int64_t j = 0; j < 5; ++j) {
                double expect = 0;
                for (int64_t k = 0; k < 6; ++k) {
                    expect += a.at((bi * 4 + i) * 6 + k) *
                              b.at((bi * 6 + k) * 5 + j);
                }
                ASSERT_NEAR(c.at((bi * 4 + i) * 5 + j), expect, 1e-9);
            }
        }
    }
}

TEST(WorkloadTest, Conv2dMatchesReference)
{
    const int64_t n = 2, h = 6, w = 6, ci = 3, co = 4, k = 3;
    const int64_t stride = 1, pad = 1;
    workloads::OpSpec op = workloads::conv2d(
        n, h, w, ci, co, k, stride, pad, 1, DataType::f32(),
        DataType::f32());
    auto args = runOp(op);
    const NDArray& a = args[0];
    const NDArray& weight = args[1];
    const NDArray& out = args.back();
    auto a_at = [&](int64_t nn, int64_t hh, int64_t ww, int64_t cc) {
        if (hh < 0 || hh >= h || ww < 0 || ww >= w) return 0.0;
        return a.at(((nn * h + hh) * w + ww) * ci + cc);
    };
    const int64_t ho = h, wo = w; // stride 1, pad 1, k 3
    for (int64_t nn = 0; nn < n; ++nn) {
        for (int64_t oh = 0; oh < ho; ++oh) {
            for (int64_t ow = 0; ow < wo; ++ow) {
                for (int64_t oc = 0; oc < co; ++oc) {
                    double expect = 0;
                    for (int64_t rh = 0; rh < k; ++rh) {
                        for (int64_t rw = 0; rw < k; ++rw) {
                            for (int64_t rc = 0; rc < ci; ++rc) {
                                expect +=
                                    a_at(nn, oh + rh - pad,
                                         ow + rw - pad, rc) *
                                    weight.at(((rh * k + rw) * ci + rc) *
                                                  co +
                                              oc);
                            }
                        }
                    }
                    ASSERT_NEAR(out.at(((nn * ho + oh) * wo + ow) * co +
                                       oc),
                                expect, 1e-9)
                        << "at " << nn << "," << oh << "," << ow << ","
                        << oc;
                }
            }
        }
    }
}

TEST(WorkloadTest, DilatedConvUsesDilation)
{
    // DIL with dilation 2 differs from dilation 1 on the same data.
    workloads::OpSpec dil = workloads::conv2d(
        1, 8, 8, 2, 2, 3, 1, 2, 2, DataType::f32(), DataType::f32());
    workloads::OpSpec plain = workloads::conv2d(
        1, 8, 8, 2, 2, 3, 1, 2, 1, DataType::f32(), DataType::f32());
    EXPECT_EQ(dil.name, std::string("DIL"));
    EXPECT_EQ(plain.name, std::string("C2D"));
    auto dil_out = runOp(dil).back();
    auto plain_out = runOp(plain).back();
    // Outputs have different shapes (effective kernel size differs), so
    // just check both computed something non-trivial.
    double dil_norm = 0;
    for (int64_t i = 0; i < dil_out.numel(); ++i) {
        dil_norm += std::fabs(dil_out.at(i));
    }
    EXPECT_GT(dil_norm, 0);
    EXPECT_NE(dil_out.numel(), 0);
    EXPECT_NE(plain_out.numel(), 0);
}

TEST(WorkloadTest, DepthwiseMatchesReference)
{
    const int64_t n = 1, h = 5, w = 5, c = 3, k = 3;
    workloads::OpSpec op = workloads::depthwiseConv2d(
        n, h, w, c, k, 1, 1, DataType::f32(), DataType::f32());
    auto args = runOp(op);
    const NDArray& a = args[0];
    const NDArray& weight = args[1];
    const NDArray& out = args.back();
    auto a_at = [&](int64_t hh, int64_t ww, int64_t cc) {
        if (hh < 0 || hh >= h || ww < 0 || ww >= w) return 0.0;
        return a.at((hh * w + ww) * c + cc);
    };
    for (int64_t oh = 0; oh < h; ++oh) {
        for (int64_t ow = 0; ow < w; ++ow) {
            for (int64_t cc = 0; cc < c; ++cc) {
                double expect = 0;
                for (int64_t rh = 0; rh < k; ++rh) {
                    for (int64_t rw = 0; rw < k; ++rw) {
                        expect += a_at(oh + rh - 1, ow + rw - 1, cc) *
                                  weight.at((rh * k + rw) * c + cc);
                    }
                }
                ASSERT_NEAR(out.at((oh * w + ow) * c + cc), expect,
                            1e-9);
            }
        }
    }
}

TEST(WorkloadTest, GroupConvRespectsGroups)
{
    // With 2 groups, output channels in group 0 must not depend on
    // input channels in group 1.
    const int64_t groups = 2, cig = 2, cog = 2;
    workloads::OpSpec op = workloads::groupConv2d(
        1, 4, 4, groups * cig, groups * cog, groups, 3, 1, 1,
        DataType::f32(), DataType::f32());
    Rng rng(5);
    std::vector<NDArray> args;
    for (const Buffer& param : op.func->params) {
        std::vector<int64_t> shape;
        for (size_t d = 0; d < param->ndim(); ++d) {
            shape.push_back(param->shapeInt(d));
        }
        NDArray array(param->dtype, shape);
        array.fillRandom(rng);
        args.push_back(std::move(array));
    }
    // Zero group 1 of the input; run; outputs of group 0 unchanged vs a
    // run with random group 1.
    std::vector<NDArray> poked = args;
    for (int64_t i = 0; i < poked[0].numel(); ++i) {
        // layout [n,h,w,g,cig]: group = (i / cig) % groups
        if ((i / cig) % groups == 1) poked[0].at(i) = 99.0;
    }
    std::vector<NDArray*> p1, p2;
    for (auto& a : args) p1.push_back(&a);
    for (auto& a : poked) p2.push_back(&a);
    runtime::Interpreter interp;
    interp.run(op.func, p1);
    interp.run(op.func, p2);
    const NDArray& out1 = args.back();
    const NDArray& out2 = poked.back();
    for (int64_t i = 0; i < out1.numel(); ++i) {
        if ((i / cog) % groups == 0) {
            ASSERT_EQ(out1.at(i), out2.at(i))
                << "group 0 output depended on group 1 input";
        }
    }
}

TEST(WorkloadTest, TransposedConvShapeAndEnergy)
{
    const int64_t h = 4, w = 4, stride = 2, k = 4;
    workloads::OpSpec op = workloads::transposedConv2d(
        1, h, w, 2, 2, k, stride, DataType::f32(), DataType::f32());
    // Output spatial extent: (h-1)*stride + k = 10.
    const Buffer& out_buf = op.func->params.back();
    EXPECT_EQ(out_buf->shapeInt(1), (h - 1) * stride + k);
    auto out = runOp(op).back();
    double norm = 0;
    for (int64_t i = 0; i < out.numel(); ++i) norm += std::fabs(out.at(i));
    EXPECT_GT(norm, 0);
}

TEST(WorkloadTest, Conv1dMatchesReference)
{
    const int64_t n = 1, l = 8, ci = 2, co = 3, k = 3;
    const int64_t stride = 2, pad = 1;
    workloads::OpSpec op = workloads::conv1d(
        n, l, ci, co, k, stride, pad, DataType::f32(), DataType::f32());
    auto args = runOp(op);
    const NDArray& a = args[0];
    const NDArray& weight = args[1];
    const NDArray& out = args.back();
    const int64_t lo = (l + 2 * pad - k) / stride + 1;
    auto a_at = [&](int64_t pos, int64_t cc) {
        if (pos < 0 || pos >= l) return 0.0;
        return a.at(pos * ci + cc);
    };
    for (int64_t ol = 0; ol < lo; ++ol) {
        for (int64_t oc = 0; oc < co; ++oc) {
            double expect = 0;
            for (int64_t rk = 0; rk < k; ++rk) {
                for (int64_t rc = 0; rc < ci; ++rc) {
                    expect += a_at(ol * stride + rk - pad, rc) *
                              weight.at((rk * ci + rc) * co + oc);
                }
            }
            ASSERT_NEAR(out.at(ol * co + oc), expect, 1e-9);
        }
    }
}

TEST(WorkloadTest, Conv3dComputesSomething)
{
    workloads::OpSpec op = workloads::conv3d(
        1, 4, 4, 4, 2, 2, 3, 1, 1, DataType::f32(), DataType::f32());
    auto out = runOp(op).back();
    double norm = 0;
    for (int64_t i = 0; i < out.numel(); ++i) norm += std::fabs(out.at(i));
    EXPECT_GT(norm, 0);
    EXPECT_GT(op.macs, 0);
}

TEST(WorkloadSuiteTest, GpuSuiteHasAllEightOps)
{
    std::vector<workloads::OpSpec> suite = workloads::gpuSuite();
    ASSERT_EQ(suite.size(), 8u);
    std::vector<std::string> expected = {"C1D", "C2D", "C3D", "DEP",
                                         "DIL", "GMM", "GRP", "T2D"};
    for (size_t i = 0; i < suite.size(); ++i) {
        EXPECT_EQ(suite[i].name, expected[i]);
        EXPECT_GT(suite[i].macs, 0);
        EXPECT_TRUE(hasBlock(suite[i].func->body,
                             suite[i].einsum_block));
    }
}

TEST(WorkloadSuiteTest, SmallSuiteMirrorsLarge)
{
    std::vector<workloads::OpSpec> small = workloads::gpuSuiteSmall();
    std::vector<workloads::OpSpec> large = workloads::gpuSuite();
    ASSERT_EQ(small.size(), large.size());
    for (size_t i = 0; i < small.size(); ++i) {
        EXPECT_EQ(small[i].name, large[i].name);
        EXPECT_LT(small[i].macs, large[i].macs);
    }
}

TEST(WorkloadSuiteTest, ArmSuiteIsQuantized)
{
    for (const workloads::OpSpec& op : workloads::armSuite()) {
        EXPECT_EQ(op.func->params[0]->dtype, DataType::i8());
        EXPECT_EQ(op.func->params.back()->dtype, DataType::i32());
    }
}

/** Property sweep: conv2d output shape follows the standard formula. */
class ConvShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(ConvShapeTest, OutputShapeFormula)
{
    auto [k, stride, pad] = GetParam();
    const int64_t h = 12;
    workloads::OpSpec op = workloads::conv2d(
        1, h, h, 2, 2, k, stride, pad, 1, DataType::f32(),
        DataType::f32());
    const Buffer& out = op.func->params.back();
    int64_t expect = (h + 2 * pad - k) / stride + 1;
    EXPECT_EQ(out->shapeInt(1), expect);
    EXPECT_EQ(out->shapeInt(2), expect);
}

INSTANTIATE_TEST_SUITE_P(
    KernelStridePad, ConvShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 0), std::make_tuple(3, 1, 1),
                      std::make_tuple(3, 2, 1), std::make_tuple(5, 1, 2),
                      std::make_tuple(5, 2, 2),
                      std::make_tuple(7, 2, 3)));

} // namespace
} // namespace tir

namespace tir {
namespace {

TEST(SoftmaxTest, MatchesReference)
{
    const int64_t rows = 4, cols = 9;
    workloads::OpSpec op = workloads::softmax(rows, cols);
    auto args = runOp(op, 21);
    const NDArray& x = args[0];
    const NDArray& out = args.back();
    for (int64_t r = 0; r < rows; ++r) {
        double mx = -1e30;
        for (int64_t c = 0; c < cols; ++c) {
            mx = std::max(mx, x.at(r * cols + c));
        }
        double denom = 0;
        for (int64_t c = 0; c < cols; ++c) {
            denom += std::exp(x.at(r * cols + c) - mx);
        }
        double rowsum = 0;
        for (int64_t c = 0; c < cols; ++c) {
            double expect = std::exp(x.at(r * cols + c) - mx) / denom;
            ASSERT_NEAR(out.at(r * cols + c), expect, 1e-9);
            rowsum += out.at(r * cols + c);
        }
        EXPECT_NEAR(rowsum, 1.0, 1e-9);
    }
}

TEST(SoftmaxTest, SchedulableAndLowerable)
{
    workloads::OpSpec op = workloads::softmax(8, 16);
    Schedule sch(op.func);
    // Mixed pipeline: inline the exp stage into the normalizer is not
    // legal (RowSum also consumes it), but loop transforms apply freely.
    std::vector<Var> loops = sch.getLoops("Softmax");
    std::vector<Var> split = sch.split(loops[1], {-1, 4});
    sch.vectorize(split[1]);
    sch.validateAffineBindings();
    testutil::expectSameResults(sch.func(), op.func);
    PrimFunc lowered = lowerToLoops(sch.func());
    EXPECT_TRUE(isBlockFree(lowered->body));
    testutil::expectSameResults(lowered, op.func);
}

TEST(SoftmaxTest, CodegenCompilesConceptually)
{
    workloads::OpSpec op = workloads::softmax(4, 8);
    std::string code = codegen::emitC(op.func);
    EXPECT_NE(code.find("expf"), std::string::npos);
    EXPECT_NE(code.find(" / "), std::string::npos);
    EXPECT_NE(code.find("fmaxf"), std::string::npos);
}

} // namespace
} // namespace tir

namespace tir {
namespace {

TEST(AttentionTest, MatchesReference)
{
    const int64_t seq = 6, dim = 4;
    workloads::OpSpec op = workloads::attention(seq, dim);
    auto args = runOp(op, 33);
    const NDArray& q = args[0];
    const NDArray& k = args[1];
    const NDArray& v = args[2];
    const NDArray& out = args.back();
    double scale = 1.0 / std::sqrt(static_cast<double>(dim));
    for (int64_t i = 0; i < seq; ++i) {
        std::vector<double> scores(seq, 0);
        double mx = -1e30;
        for (int64_t j = 0; j < seq; ++j) {
            for (int64_t d = 0; d < dim; ++d) {
                scores[j] += q.at(i * dim + d) * k.at(j * dim + d);
            }
            scores[j] *= scale;
            mx = std::max(mx, scores[j]);
        }
        double denom = 0;
        for (int64_t j = 0; j < seq; ++j) {
            denom += std::exp(scores[j] - mx);
        }
        for (int64_t d = 0; d < dim; ++d) {
            double expect = 0;
            for (int64_t j = 0; j < seq; ++j) {
                expect += std::exp(scores[j] - mx) / denom *
                          v.at(j * dim + d);
            }
            ASSERT_NEAR(out.at(i * dim + d), expect, 1e-7)
                << i << "," << d;
        }
    }
}

TEST(AttentionTest, ScoresBlockIsTensorizable)
{
    // The QK^T einsum inside the attention pipeline matches the
    // synthetic accelerator via candidate generation.
    workloads::OpSpec op = workloads::attention(16, 16);
    auto candidates = meta::generateTensorizeCandidates(
        op.func, "Scores", {"accel_dot_4x4x4"});
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_EQ(candidates[0].padding_waste, 1.0);
}

} // namespace
} // namespace tir
