/**
 * @file
 * Negative-path tests: every schedule primitive must reject misuse with
 * a FatalError diagnostic rather than producing a wrong program — the
 * "users get warning or error information" half of §3.3.
 */
#include <gtest/gtest.h>

#include "intrin/tensor_intrin.h"
#include "tir/schedule.h"

#include "test_util.h"

namespace tir {
namespace {

using testutil::matmul;
using testutil::matmulRelu;

TEST(ScheduleErrorTest, SplitThreadBoundLoop)
{
    Schedule sch(matmul(16, 16, 16));
    std::vector<Var> loops = sch.getLoops("C");
    sch.bind(loops[0], "blockIdx.x");
    EXPECT_THROW(sch.split(loops[0], {4, 4}), FatalError);
}

TEST(ScheduleErrorTest, SplitWithTwoInferredFactors)
{
    Schedule sch(matmul(16, 16, 16));
    std::vector<Var> loops = sch.getLoops("C");
    EXPECT_THROW(sch.split(loops[0], {-1, -1}), FatalError);
}

TEST(ScheduleErrorTest, SplitZeroFactor)
{
    Schedule sch(matmul(16, 16, 16));
    std::vector<Var> loops = sch.getLoops("C");
    EXPECT_THROW(sch.split(loops[0], {0, 16}), FatalError);
}

TEST(ScheduleErrorTest, FuseAcrossBlocks)
{
    // Loops of different blocks are not nested: fuse must refuse.
    Schedule sch(matmulRelu(8, 8, 8));
    Var c_loop = sch.getLoops("C")[0];
    Var d_loop = sch.getLoops("D")[0];
    EXPECT_THROW(sch.fuse({c_loop, d_loop}), FatalError);
}

TEST(ScheduleErrorTest, FuseThreadBoundLoops)
{
    Schedule sch(matmul(8, 8, 8));
    std::vector<Var> loops = sch.getLoops("C");
    sch.bind(loops[0], "blockIdx.x");
    EXPECT_THROW(sch.fuse({loops[0], loops[1]}), FatalError);
}

TEST(ScheduleErrorTest, ReorderDisjointNests)
{
    Schedule sch(matmulRelu(8, 8, 8));
    Var c_loop = sch.getLoops("C")[0];
    Var d_loop = sch.getLoops("D")[0];
    EXPECT_THROW(sch.reorder({c_loop, d_loop}), FatalError);
}

TEST(ScheduleErrorTest, ComputeAtWithoutConsumer)
{
    // D's loops contain no consumer of... moving D (the consumer) via
    // computeAt under C's own reduction loop: C doesn't read D.
    Schedule sch(matmulRelu(8, 8, 8));
    std::vector<Var> c_loops = sch.getLoops("C");
    EXPECT_THROW(sch.computeAt("D", c_loops[2]), FatalError);
}

TEST(ScheduleErrorTest, ReverseComputeAtNeedsSpatialConsumer)
{
    // The reduction block C is not a pure spatial consumer.
    Schedule sch(matmulRelu(8, 8, 8));
    std::vector<Var> d_loops = sch.getLoops("D");
    EXPECT_THROW(sch.reverseComputeAt("C", d_loops[0]), FatalError);
}

TEST(ScheduleErrorTest, CacheReadIndexOutOfRange)
{
    Schedule sch(matmul(8, 8, 8));
    EXPECT_THROW(sch.cacheRead("C", 7, "shared"), FatalError);
    EXPECT_THROW(sch.cacheRead("C", -1, "shared"), FatalError);
}

TEST(ScheduleErrorTest, TensorizeUnknownIntrinsic)
{
    registerBuiltinIntrinsics();
    Schedule sch(matmul(16, 16, 16));
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(loops[0], {-1, 4});
    std::vector<Var> j_split = sch.split(loops[1], {-1, 4});
    std::vector<Var> k_split = sch.split(loops[2], {-1, 4});
    sch.reorder({i_split[0], j_split[0], k_split[0], i_split[1],
                 j_split[1], k_split[1]});
    sch.decomposeReduction("C", k_split[0]);
    std::string outer = sch.blockize(i_split[1]);
    EXPECT_THROW(sch.tensorize(outer, "no_such_intrin"), FatalError);
}

TEST(ScheduleErrorTest, TensorizeNonMatchingBlock)
{
    // The elementwise D block does not match a matmul description.
    registerBuiltinIntrinsics();
    Schedule sch(matmulRelu(16, 16, 16));
    EXPECT_THROW(sch.tensorize("D", "accel_dot_4x4x4"), FatalError);
}

TEST(ScheduleErrorTest, DecomposeAtForeignLoop)
{
    Schedule sch(matmulRelu(8, 8, 8));
    Var d_loop = sch.getLoops("D")[0];
    EXPECT_THROW(sch.decomposeReduction("C", d_loop), FatalError);
}

TEST(ScheduleErrorTest, DecomposeBelowReductionBinding)
{
    // After reordering k above i, decomposing at i would hoist the init
    // under a reduction loop: rejected.
    Schedule sch(matmul(8, 8, 8));
    std::vector<Var> loops = sch.getLoops("C");
    sch.reorder({loops[2], loops[0]});
    EXPECT_THROW(sch.decomposeReduction("C", loops[0]), FatalError);
}

TEST(ScheduleErrorTest, DecomposeWithoutInit)
{
    Schedule sch(matmul(8, 8, 8));
    std::vector<Var> loops = sch.getLoops("C");
    sch.decomposeReduction("C", loops[2]);
    // Second decompose: the update block no longer carries an init.
    EXPECT_THROW(sch.decomposeReduction("C", loops[2]), FatalError);
}

TEST(ScheduleErrorTest, BlockizeMultiBlockSubtree)
{
    // The root-level loop of the relu pipeline holds two blocks after
    // compute_at: blockize must refuse non-single-chain subtrees.
    Schedule sch(matmulRelu(8, 8, 8));
    std::vector<Var> d_loops = sch.getLoops("D");
    sch.computeAt("C", d_loops[0]);
    EXPECT_THROW(sch.blockize(d_loops[0]), FatalError);
}

TEST(ScheduleErrorTest, ReindexFusedOrderMustCoverGroups)
{
    // The operand order must list exactly the groups the operand uses.
    Schedule sch(matmulRelu(8, 8, 8));
    EXPECT_THROW(sch.reindexFused("D", -1, {{0}, {1}}, {8, 8}, {0}),
                 FatalError);
}

TEST(ScheduleErrorTest, UnknownBlockAndLoopNames)
{
    Schedule sch(matmul(8, 8, 8));
    EXPECT_THROW(sch.getLoops("missing"), FatalError);
    Var stray = var("stray");
    EXPECT_THROW(sch.split(stray, {2, 4}), FatalError);
    EXPECT_THROW(sch.loopExtent(stray), FatalError);
}

TEST(ScheduleErrorTest, ValidationCatchesHandCraftedBadBinding)
{
    // Manually craft the paper's invalid v1 = i, v2 = i*2 program and
    // confirm whole-function validation rejects it.
    Buffer buf = makeBuffer("B", {16, 32});
    Var i = var("i");
    Var v1 = var("v1");
    Var v2 = var("v2");
    BlockPtr block = makeBlock(
        "bad",
        {IterVar(v1, Range::fromExtent(16), IterType::kSpatial),
         IterVar(v2, Range::fromExtent(32), IterType::kSpatial)},
        {},
        {BufferRegion(buf, {Range(Expr(v1), intImm(1)),
                            Range(Expr(v2), intImm(1))})},
        bufferStore(buf, floatImm(0), {Expr(v1), Expr(v2)}));
    Stmt realize = blockRealize({Expr(i), Expr(i) * 2},
                                intImm(1, DataType::boolean()), block);
    Stmt loop = makeFor(i, intImm(0), intImm(16), realize);
    PrimFunc func = makeFunc("bad", {buf}, makeRootBlock(loop));
    Schedule sch(func);
    EXPECT_THROW(sch.validateAffineBindings(), FatalError);
}

} // namespace
} // namespace tir
