/**
 * @file
 * Schedule-primitive tests. Every transformation is checked two ways:
 * structurally (the rewrite produced the expected shape) and numerically
 * (the interpreter computes identical results before and after), plus the
 * quasi-affine validator must accept every intermediate program.
 */
#include <gtest/gtest.h>

#include "ir/printer.h"
#include "ir/transform.h"
#include "tir/schedule.h"

#include "test_util.h"

namespace tir {
namespace {

using testutil::expectSameResults;
using testutil::matmul;
using testutil::matmulRelu;

TEST(ScheduleQueryTest, GetLoopsAndBlocks)
{
    Schedule sch(matmul(16, 16, 16));
    EXPECT_TRUE(sch.hasBlock("C"));
    EXPECT_FALSE(sch.hasBlock("D"));
    std::vector<Var> loops = sch.getLoops("C");
    ASSERT_EQ(loops.size(), 3u);
    EXPECT_EQ(sch.loopExtent(loops[0]), 16);
    EXPECT_THROW(sch.getBlock("nope"), FatalError);
}

TEST(SplitTest, PerfectSplitPreservesSemantics)
{
    PrimFunc original = matmul(16, 16, 16);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> split = sch.split(loops[0], {4, 4});
    ASSERT_EQ(split.size(), 2u);
    EXPECT_EQ(sch.getLoops("C").size(), 4u);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(SplitTest, InferredFactor)
{
    Schedule sch(matmul(24, 8, 8));
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> split = sch.split(loops[0], {-1, 6});
    EXPECT_EQ(sch.loopExtent(split[0]), 4);
    EXPECT_EQ(sch.loopExtent(split[1]), 6);
    sch.validateAffineBindings();
}

TEST(SplitTest, ImperfectSplitAddsPredicate)
{
    PrimFunc original = matmul(10, 8, 8);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    sch.split(loops[0], {3, 4}); // 12 > 10: needs a guard
    std::string text = funcToString(sch.func());
    EXPECT_NE(text.find("where"), std::string::npos);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(SplitTest, RejectsTooSmallFactors)
{
    Schedule sch(matmul(16, 16, 16));
    std::vector<Var> loops = sch.getLoops("C");
    EXPECT_THROW(sch.split(loops[0], {2, 4}), FatalError);
}

TEST(FuseTest, FusePreservesSemantics)
{
    PrimFunc original = matmul(8, 12, 16);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    Var fused = sch.fuse({loops[0], loops[1]});
    EXPECT_EQ(sch.loopExtent(fused), 96);
    EXPECT_EQ(sch.getLoops("C").size(), 2u);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(FuseTest, FuseThenSplitRoundTrip)
{
    PrimFunc original = matmul(8, 8, 8);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    Var fused = sch.fuse({loops[0], loops[1]});
    sch.split(fused, {16, 4});
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(FuseTest, RejectsNonAdjacentLoops)
{
    Schedule sch(matmul(8, 8, 8));
    std::vector<Var> loops = sch.getLoops("C");
    EXPECT_THROW(sch.fuse({loops[0], loops[2]}), FatalError);
}

TEST(ReorderTest, ReorderPreservesSemantics)
{
    PrimFunc original = matmul(8, 10, 12);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    sch.reorder({loops[2], loops[0]});
    std::vector<Var> after = sch.getLoops("C");
    EXPECT_EQ(after[0], loops[2]);
    EXPECT_EQ(after[2], loops[0]);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(ReorderTest, TiledGemmLoopStructure)
{
    // Classic 2-level tiling: i/j split + reorder into io jo ii ji k.
    PrimFunc original = matmul(32, 32, 32);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(loops[0], {8, 4});
    std::vector<Var> j_split = sch.split(loops[1], {8, 4});
    sch.reorder({i_split[0], j_split[0], i_split[1], j_split[1]});
    std::vector<Var> after = sch.getLoops("C");
    ASSERT_EQ(after.size(), 5u);
    EXPECT_EQ(after[0], i_split[0]);
    EXPECT_EQ(after[1], j_split[0]);
    EXPECT_EQ(after[2], i_split[1]);
    EXPECT_EQ(after[3], j_split[1]);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(BindTest, ThreadBindingAndAnnotations)
{
    Schedule sch(matmul(16, 16, 16));
    std::vector<Var> loops = sch.getLoops("C");
    sch.bind(loops[0], "blockIdx.x");
    sch.bind(loops[1], "threadIdx.x");
    sch.unroll(loops[2]);
    std::string text = funcToString(sch.func());
    EXPECT_NE(text.find("thread_binding(\"blockIdx.x\""),
              std::string::npos);
    EXPECT_NE(text.find("unrolled("), std::string::npos);
    expectSameResults(sch.func(), matmul(16, 16, 16));
}

TEST(ComputeAtTest, MovesProducerIntoConsumerTile)
{
    // Figure 6's example: producer C moved under consumer D's tile loop.
    PrimFunc original = matmulRelu(32, 32, 8);
    Schedule sch(original);
    std::vector<Var> d_loops = sch.getLoops("D");
    std::vector<Var> i_split = sch.split(d_loops[0], {8, 4});
    sch.computeAt("C", i_split[0]);
    // C's loops are now nested under D's outer loop.
    std::vector<Var> c_loops = sch.getLoops("C");
    EXPECT_EQ(c_loops[0], i_split[0]);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(ReverseComputeAtTest, MovesEpilogueIntoProducerTile)
{
    PrimFunc original = matmulRelu(32, 32, 8);
    Schedule sch(original);
    std::vector<Var> c_loops = sch.getLoops("C");
    std::vector<Var> i_split = sch.split(c_loops[0], {4, 8});
    sch.reverseComputeAt("D", i_split[0]);
    std::vector<Var> d_loops = sch.getLoops("D");
    EXPECT_EQ(d_loops[0], i_split[0]);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(ComputeInlineTest, InlinesElementwiseProducer)
{
    // B = A + 1; C = exp(B): inline B into C.
    te::Builder builder;
    Buffer a = builder.placeholder("A", {16, 16});
    Buffer b = builder.compute(
        "B", {16, 16},
        [&](const std::vector<Var>& v) {
            return bufferLoad(a, {v[0], v[1]}) + floatImm(1.0);
        });
    Buffer c = builder.compute(
        "C", {16, 16},
        [&](const std::vector<Var>& v) {
            return call(DataType::f32(), "exp",
                        {bufferLoad(b, {v[0], v[1]})});
        });
    PrimFunc original = builder.build("fuse_add_exp", {c});

    Schedule sch(original);
    sch.computeInline("B");
    EXPECT_FALSE(sch.hasBlock("B"));
    // The B buffer is no longer allocated.
    const BlockNode* root = asBlockRealize(sch.func()->body);
    EXPECT_TRUE(root->alloc_buffers.empty());
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(ComputeInlineTest, RefusesReductionBlocks)
{
    Schedule sch(matmul(8, 8, 8));
    EXPECT_THROW(sch.computeInline("C"), FatalError);
}

TEST(ReverseComputeInlineTest, InlinesEpilogueIntoProducer)
{
    PrimFunc original = matmulRelu(16, 16, 8);
    Schedule sch(original);
    // C is a reduction; decompose first is not needed because D is
    // inlined into nothing reductive... D reads C; C is a reduction, so
    // reverse inline must refuse.
    EXPECT_THROW(sch.reverseComputeInline("D"), FatalError);

    // Elementwise chain: B = A * 2; D = relu(B). Reverse-inline D into B.
    te::Builder builder;
    Buffer a = builder.placeholder("A", {16});
    Buffer b = builder.compute(
        "B", {16},
        [&](const std::vector<Var>& v) {
            return bufferLoad(a, {v[0]}) * floatImm(2.0);
        });
    Buffer d = builder.compute(
        "D", {16},
        [&](const std::vector<Var>& v) {
            return maxExpr(bufferLoad(b, {v[0]}), floatImm(0.0));
        });
    PrimFunc chain = builder.build("scale_relu", {d});
    Schedule chain_sch(chain);
    chain_sch.reverseComputeInline("D");
    EXPECT_FALSE(chain_sch.hasBlock("D"));
    EXPECT_TRUE(chain_sch.hasBlock("B"));
    chain_sch.validateAffineBindings();
    expectSameResults(chain_sch.func(), chain);
}

TEST(CacheReadTest, StagesInputThroughScope)
{
    PrimFunc original = matmul(16, 16, 16);
    Schedule sch(original);
    std::string copy = sch.cacheRead("C", 0, "shared");
    EXPECT_TRUE(sch.hasBlock(copy));
    std::string text = funcToString(sch.func());
    EXPECT_NE(text.find("scope=\"shared\""), std::string::npos);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(CacheWriteTest, StagesOutputThroughScope)
{
    PrimFunc original = matmul(16, 16, 16);
    Schedule sch(original);
    std::string copy = sch.cacheWrite("C", "local");
    EXPECT_TRUE(sch.hasBlock(copy));
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(CacheReadTest, CacheThenComputeAtShrinksCopy)
{
    PrimFunc original = matmul(32, 32, 32);
    Schedule sch(original);
    std::string copy = sch.cacheRead("C", 0, "shared");
    std::vector<Var> loops = sch.getLoops("C");
    std::vector<Var> split = sch.split(loops[0], {8, 4});
    sch.computeAt(copy, split[0]);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(DecomposeReductionTest, SplitsInitFromUpdate)
{
    PrimFunc original = matmul(16, 16, 16);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    std::string init = sch.decomposeReduction("C", loops[2]);
    EXPECT_TRUE(sch.hasBlock(init));
    BlockPtr update = sch.getBlock("C");
    EXPECT_EQ(update->init, nullptr);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(DecomposeReductionTest, InitHoistsAboveReductionLoop)
{
    PrimFunc original = matmul(16, 16, 16);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    // Decompose above the middle loop: init iterates i only at that
    // position, and j inside.
    std::string init = sch.decomposeReduction("C", loops[1]);
    std::vector<Var> init_loops = sch.getLoops(init);
    ASSERT_EQ(init_loops.size(), 2u);
    EXPECT_EQ(init_loops[0], loops[0]);
    sch.validateAffineBindings();
    expectSameResults(sch.func(), original);
}

TEST(SamplingTest, PerfectTileMultipliesToExtent)
{
    Schedule sch(matmul(64, 64, 64), /*seed=*/7);
    std::vector<Var> loops = sch.getLoops("C");
    for (int trial = 0; trial < 8; ++trial) {
        Schedule fresh(matmul(64, 64, 64), /*seed=*/100 + trial);
        std::vector<Var> ls = fresh.getLoops("C");
        std::vector<int64_t> tile = fresh.samplePerfectTile(ls[0], 4, 16);
        int64_t product = 1;
        for (int64_t f : tile) product *= f;
        EXPECT_EQ(product, 64);
        EXPECT_LE(tile.back(), 16);
    }
}

TEST(SamplingTest, DecisionReplayIsDeterministic)
{
    auto run = [](std::vector<Decision> overrides) {
        Schedule sch(matmul(64, 64, 64), 9);
        sch.setDecisionOverrides(std::move(overrides));
        std::vector<Var> loops = sch.getLoops("C");
        std::vector<int64_t> t0 = sch.samplePerfectTile(loops[0], 3);
        std::vector<int64_t> t1 = sch.samplePerfectTile(loops[1], 3);
        int64_t c = sch.sampleCategorical({1, 2, 4}, {});
        return std::make_tuple(t0, t1, c, sch.decisions());
    };
    auto [t0, t1, c, decisions] = run({});
    auto [r0, r1, rc, rdec] = run(decisions);
    EXPECT_EQ(t0, r0);
    EXPECT_EQ(t1, r1);
    EXPECT_EQ(c, rc);
}

} // namespace
} // namespace tir

namespace tir {
namespace {

TEST(MergeReductionTest, RoundTripsWithDecompose)
{
    PrimFunc original = testutil::matmul(16, 16, 16);
    Schedule sch(original);
    std::vector<Var> loops = sch.getLoops("C");
    std::string init = sch.decomposeReduction("C", loops[2]);
    ASSERT_TRUE(sch.hasBlock(init));
    sch.mergeReduction(init, "C");
    EXPECT_FALSE(sch.hasBlock(init));
    BlockPtr merged = sch.getBlock("C");
    EXPECT_NE(merged->init, nullptr);
    sch.validateAffineBindings();
    testutil::expectSameResults(sch.func(), original);
}

TEST(MergeReductionTest, RejectsBlocksWithExistingInit)
{
    PrimFunc original = testutil::matmulRelu(16, 16, 8);
    Schedule sch(original);
    // D is spatial; merging it into the (init-carrying) C must fail.
    EXPECT_THROW(sch.mergeReduction("D", "C"), FatalError);
}

TEST(MergeReductionTest, RejectsMismatchedBuffers)
{
    // The init block of one reduction cannot merge into another block.
    te::Builder builder;
    Buffer a = builder.placeholder("A", {8, 8});
    Buffer c = builder.sumReduce(
        "C", {8}, {8},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return bufferLoad(a, {s[0], r[0]});
        });
    Buffer d = builder.sumReduce(
        "D", {8}, {8},
        [&](const std::vector<Var>& s, const std::vector<Var>& r) {
            return bufferLoad(a, {r[0], s[0]});
        });
    PrimFunc func = builder.build("two_sums", {c, d});
    Schedule sch(func);
    std::vector<Var> c_loops = sch.getLoops("C");
    std::string c_init = sch.decomposeReduction("C", c_loops[1]);
    EXPECT_THROW(sch.mergeReduction(c_init, "D"), FatalError);
}

} // namespace
} // namespace tir
