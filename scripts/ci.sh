#!/usr/bin/env bash
# Tier-1 gate: configure a fresh build tree with warnings-as-errors,
# build everything (library, tests, benches), and run the test suite.
# A second job rebuilds the tests with AddressSanitizer+UBSan and reruns
# them (skippable with TENSORIR_CI_SKIP_SANITIZERS=1 for quick local
# iterations).
#
#   scripts/ci.sh [build-dir]     (default: build-ci)
#
# The project's baseline warning set (-Wall -Wextra -Wno-unused-parameter)
# comes from the top-level CMakeLists; this script upgrades it to -Werror.
# -Wno-restrict works around a GCC 12 false positive (PR 105651): at -O2
# the inlined libstdc++ `const char* + std::string&&` operator trips
# -Wrestrict inside <bits/char_traits.h> with impossible (near-SIZE_MAX)
# bounds. Nothing in this repo aliases those buffers.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-ci}"
rm -rf "$BUILD_DIR"

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="-Werror -Wno-restrict"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo "ci: build (-Wall -Wextra -Werror) and tests passed"

# Lint gate: run the tensorir-lint CLI (tools/tensorir_lint.cpp) over
# the small-shape seed suite. The binary exits nonzero iff any
# error-severity diagnostic (TIR-R/B/V/L codes) is reported, so a
# schedule or lowering regression that introduces a provable hazard
# fails CI here even if no unit test covers the exact pattern.
"$BUILD_DIR/tools/tensorir-lint" --suite small
echo "ci: lint gate (tensorir-lint, small suite) passed"

# clang-tidy job: the repo ships a .clang-tidy profile (bugprone-*,
# performance-*, naming conventions) and the build tree exports
# compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS in the top
# CMakeLists). Scoped to the static-analysis and lowering layers —
# the subsystems this profile was written against — to keep CI time
# bounded; widen the glob when touching other layers. Skipped when
# the toolchain image has no clang-tidy.
if command -v clang-tidy >/dev/null 2>&1; then
    clang-tidy -p "$BUILD_DIR" --quiet \
        src/tir/analysis/*.cpp src/lower/*.cpp tools/*.cpp
    echo "ci: clang-tidy (analysis + lowering layers) passed"
else
    echo "ci: clang-tidy not found; static-analysis job skipped"
fi

# Forced-tree-walk job: the whole suite again with runtime::execute
# pinned to the tree-walking oracle instead of the bytecode VM. Every
# numeric check in the tests must hold on both engines — this is the
# cheap insurance that the VM never becomes the only engine the suite
# actually exercises.
TENSORIR_FORCE_TREEWALK=1 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure
echo "ci: forced-tree-walk run (oracle engine) passed"

# JIT job: the whole suite once more with runtime::execute pinned to
# the native tier (C codegen -> system compiler -> dlopen; see
# docs/EXECUTION.md). Every numeric check must hold on compiled native
# code too. A private cache directory keeps the run hermetic.
TENSORIR_ENGINE=jit \
TENSORIR_JIT_CACHE="$BUILD_DIR/jit-cache" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure
echo "ci: native-JIT run (compiled engine) passed"

# No-toolchain job: TENSORIR_ENGINE=jit with a compiler that does not
# exist. The tier must degrade to the VM everywhere — same results,
# zero failures — proving the fallback contract rather than assuming
# it.
TENSORIR_ENGINE=jit \
TENSORIR_CC=/nonexistent/tensorir-cc \
TENSORIR_JIT_CACHE="$BUILD_DIR/jit-cache-degraded" \
    ctest --test-dir "$BUILD_DIR" --output-on-failure
echo "ci: no-toolchain degradation run (JIT -> VM fallback) passed"

# Measure-jit smoke job: a tiny fixed-seed tune with the wall-clock
# measurement backend (measure_backend="jit"), journaled, then resumed
# — the resume must reproduce the wall-clock run byte for byte from
# the journal alone (real latencies are not re-measurable; the journal
# is the replay contract). The binary exits nonzero on any mismatch.
TENSORIR_JIT_CACHE="$BUILD_DIR/jit-cache" \
    "$BUILD_DIR/examples/example_measure_jit_smoke" \
    "$BUILD_DIR/measure-jit-smoke-journal.txt"
echo "ci: measure-jit smoke (journaled wall-clock resume) passed"

# Traced tuning session: run the demo under a process-wide
# TENSORIR_TRACE session, then validate the emitted Chrome-trace JSON
# (parses, spans nest per thread, counter series are monotone, and the
# span taxonomy covers search/analysis/cost-model/lowering/interpreter).
if command -v python3 >/dev/null 2>&1; then
    TENSORIR_TRACE="$BUILD_DIR/trace.json" \
        "$BUILD_DIR/examples/example_tune_trace_demo" >/dev/null
    python3 scripts/check_trace.py "$BUILD_DIR/trace.json"
    echo "ci: traced tuning session validated"
else
    echo "ci: python3 not found; trace validation skipped"
fi

# Chaos job: the whole suite again with a failpoint schedule injecting
# faults into ~10% of search candidates (TENSORIR_FAILPOINTS is read at
# process start; see src/support/failpoint.h for the grammar). Only
# search-contained sites go in this schedule — sites like gbdt.fit or
# interp.run would also fire inside unit tests that exercise those
# layers directly and expect no interference. The containment contract
# under test: every injected failure becomes an accounted per-candidate
# reject, never a failed test or a dead process.
TENSORIR_FAILPOINTS='seed=7; search.instantiate=throw(0.05); search.evaluate=error(0.05)' \
    ctest --test-dir "$BUILD_DIR" --output-on-failure
echo "ci: chaos run (failpoints in the search pipeline) passed"

# Serve-smoke job: the schedule-serving layer under a bounded
# Zipf-distributed load (bench/serve_load.cpp --check). The binary
# exits nonzero unless the run shows nonzero cache hits (including the
# mutex-free hot cache), exactly-once background tuning per unique
# workload (single-flight), every started tune completed, and a clean
# shutdown with no leaked pool tasks or in-flight registrations.
"$BUILD_DIR/bench/serve_load" \
    --requests 300 --clients 4 --workloads 10 --check
echo "ci: serve smoke (Zipf load, single-flight, clean shutdown) passed"

# Runner chaos job: the journaled tune again, now with failpoints that
# kill measurement workers outright — runner.crash aborts the child
# mid-request, runner.hang wedges it until the hard wall-clock timeout
# SIGKILLs it (set short here so the job stays fast). The binary
# asserts nonzero crash_filtered AND hang_filtered, that the tune
# completed anyway, and that a journal resume replays the
# classifications byte-identically. Skips itself without fork or a
# toolchain.
TENSORIR_JIT_CACHE="$BUILD_DIR/jit-cache" \
TENSORIR_MEASURE_TIMEOUT_MS=300 \
    "$BUILD_DIR/examples/example_runner_chaos_smoke" \
    "$BUILD_DIR/runner-chaos-journal.txt"
echo "ci: runner chaos (crashed/hung workers classified and journaled) passed"

if [[ "${TENSORIR_CI_SKIP_SANITIZERS:-0}" == "1" ]]; then
    echo "ci: sanitizer job skipped (TENSORIR_CI_SKIP_SANITIZERS=1)"
    exit 0
fi

# ASan+UBSan job: library + tests only (the bench binaries triple the
# build for no extra coverage), RelWithDebInfo so reports carry line
# numbers without the Debug-build slowdown. Leak checking stays off:
# the intrinsic/test registries are immortal by design.
SAN_DIR="${BUILD_DIR}-asan"
rm -rf "$SAN_DIR"
cmake -B "$SAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTENSORIR_SANITIZE=address,undefined \
    -DCMAKE_CXX_FLAGS="-Wno-restrict -fno-sanitize-recover=all"
cmake --build "$SAN_DIR" -j "$(nproc)" --target tensorir_tests
ASAN_OPTIONS=detect_leaks=0 ctest --test-dir "$SAN_DIR" --output-on-failure

# The env-parsing regressions (TENSORIR_PARALLELISM, TENSORIR_JIT_CACHE_MB)
# once more, explicitly, under UBSan: the pre-fix bugs were exactly the
# kind (atoi on garbage, unsigned wrap of a negative, overflowing
# multiply) that sanitizers catch even when assertions would not.
ASAN_OPTIONS=detect_leaks=0 \
    "$SAN_DIR/tests/tensorir_tests" --gtest_filter='EnvParsing*'

echo "ci: ASan+UBSan build and tests passed"

# TSan job (mutually exclusive with ASan, hence its own tree): the
# concurrency-heavy suites — thread pool, trace buffers, failpoint
# registry, the intrinsic-registry snapshot path shared by both
# execution engines, the parallel search pipeline and its
# watchdog/journal paths, and the serving layer (sharded database,
# hot cache, schedule server). The full suite under TSan's ~10x
# slowdown buys no extra coverage: everything else is single-threaded.
TSAN_DIR="${BUILD_DIR}-tsan"
rm -rf "$TSAN_DIR"
cmake -B "$TSAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DTENSORIR_SANITIZE=thread \
    -DCMAKE_CXX_FLAGS="-Wno-restrict -fno-sanitize-recover=all"
cmake --build "$TSAN_DIR" -j "$(nproc)" --target tensorir_tests
"$TSAN_DIR/tests/tensorir_tests" \
    --gtest_filter='ThreadPool*:ParallelSearch*:Trace*:Failpoint*:IntrinRegistry*:ServeDatabase*:HotCache*:ScheduleServer*'

echo "ci: TSan build and concurrency tests passed"
