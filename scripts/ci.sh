#!/usr/bin/env bash
# Tier-1 gate: configure a fresh build tree with warnings-as-errors,
# build everything (library, tests, benches), and run the test suite.
#
#   scripts/ci.sh [build-dir]     (default: build-ci)
#
# The project's baseline warning set (-Wall -Wextra -Wno-unused-parameter)
# comes from the top-level CMakeLists; this script upgrades it to -Werror.
# -Wno-restrict works around a GCC 12 false positive (PR 105651): at -O2
# the inlined libstdc++ `const char* + std::string&&` operator trips
# -Wrestrict inside <bits/char_traits.h> with impossible (near-SIZE_MAX)
# bounds. Nothing in this repo aliases those buffers.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-ci}"
rm -rf "$BUILD_DIR"

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS="-Werror -Wno-restrict"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo "ci: build (-Wall -Wextra -Werror) and tests passed"
