#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by support/trace.

Checks that CI runs against the traced demo session
(examples/tune_trace_demo.cpp):

  1. The file parses as JSON with a `traceEvents` list.
  2. Complete spans ("ph":"X") nest properly per (pid, tid): two spans
     on one thread either nest or are disjoint — a partial overlap
     means the RAII scopes (or the clock math) are broken.
  3. Every counter series ("cat":"counter") is non-decreasing: the
     collector folds deltas into monotonic totals, so a decreasing
     sample means lost or reordered updates.
  4. The span taxonomy covers the whole pipeline: search, candidate
     filtering, cost model, lowering, analysis, and the interpreter.

Usage: check_trace.py <trace.json>
"""

import json
import sys
from collections import defaultdict

# Spans the demo's tuning session must have produced, one per
# instrumented subsystem (see docs/ARCHITECTURE.md "Observability").
REQUIRED_SPANS = [
    "meta.auto_tune",
    "search.run",
    "search.generation",
    "candidate.instantiate",
    "candidate.analysis",
    "candidate.evaluate",
    "gbdt.fit",
    "lower.to_loops",
    "analysis.analyze_func",
    "interp.run",
]
REQUIRED_COUNTERS = ["search.trials_measured"]

# Timestamps are serialized in microseconds with three decimals, so
# two adjacent spans can disagree by one rounding step.
EPS_US = 0.002


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_nesting(events):
    """Spans per thread must nest or be disjoint, never interleave."""
    by_thread = defaultdict(list)
    for e in events:
        if e.get("ph") != "X":
            continue
        for key in ("ts", "dur", "name"):
            if key not in e:
                fail(f"X event missing {key!r}: {e}")
        by_thread[(e.get("pid"), e.get("tid"))].append(e)
    checked = 0
    for thread, spans in by_thread.items():
        # Outermost first at equal start times.
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # (end, name) of open enclosing spans
        for e in spans:
            start, end = e["ts"], e["ts"] + e["dur"]
            while stack and stack[-1][0] <= start + EPS_US:
                stack.pop()
            if stack and end > stack[-1][0] + EPS_US:
                fail(
                    f"span {e['name']!r} [{start}, {end}] on thread "
                    f"{thread} partially overlaps enclosing "
                    f"{stack[-1][1]!r} (ends {stack[-1][0]})"
                )
            stack.append((end, e["name"]))
            checked += 1
    return checked


def check_counters(events):
    """Counter series carry monotonically non-decreasing totals."""
    last = {}
    samples = 0
    for e in events:
        if e.get("ph") != "C" or e.get("cat") != "counter":
            continue
        name = e["name"]
        value = e["args"]["value"]
        if name in last and value < last[name]:
            fail(
                f"counter {name!r} decreased: {last[name]} -> {value}"
            )
        last[name] = value
        samples += 1
    return last, samples


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = sys.argv[1]
    try:
        with open(path) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {path}: {err}")

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("no traceEvents array")

    names = {e.get("name") for e in events}
    missing = [s for s in REQUIRED_SPANS if s not in names]
    if missing:
        fail(f"missing required spans: {', '.join(missing)}")
    counters, samples = check_counters(events)
    missing = [c for c in REQUIRED_COUNTERS if c not in counters]
    if missing:
        fail(f"missing required counters: {', '.join(missing)}")
    spans = check_nesting(events)

    print(
        f"check_trace: OK: {len(events)} events, {spans} spans nested "
        f"cleanly, {len(counters)} counter series "
        f"({samples} samples) monotone"
    )


if __name__ == "__main__":
    main()
