# Empty compiler generated dependencies file for fig10_single_op_compilers.
# This may be replaced when dependencies are built.
