file(REMOVE_RECURSE
  "../bench/fig10_single_op_compilers"
  "../bench/fig10_single_op_compilers.pdb"
  "CMakeFiles/fig10_single_op_compilers.dir/fig10_single_op_compilers.cpp.o"
  "CMakeFiles/fig10_single_op_compilers.dir/fig10_single_op_compilers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_single_op_compilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
