# Empty dependencies file for fig12_end_to_end_gpu.
# This may be replaced when dependencies are built.
