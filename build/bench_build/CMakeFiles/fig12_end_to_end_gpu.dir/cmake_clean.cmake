file(REMOVE_RECURSE
  "../bench/fig12_end_to_end_gpu"
  "../bench/fig12_end_to_end_gpu.pdb"
  "CMakeFiles/fig12_end_to_end_gpu.dir/fig12_end_to_end_gpu.cpp.o"
  "CMakeFiles/fig12_end_to_end_gpu.dir/fig12_end_to_end_gpu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_end_to_end_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
