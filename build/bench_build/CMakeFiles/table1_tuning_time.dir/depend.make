# Empty dependencies file for table1_tuning_time.
# This may be replaced when dependencies are built.
