file(REMOVE_RECURSE
  "../bench/table1_tuning_time"
  "../bench/table1_tuning_time.pdb"
  "CMakeFiles/table1_tuning_time.dir/table1_tuning_time.cpp.o"
  "CMakeFiles/table1_tuning_time.dir/table1_tuning_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_tuning_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
