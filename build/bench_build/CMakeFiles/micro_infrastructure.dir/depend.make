# Empty dependencies file for micro_infrastructure.
# This may be replaced when dependencies are built.
