file(REMOVE_RECURSE
  "../bench/micro_infrastructure"
  "../bench/micro_infrastructure.pdb"
  "CMakeFiles/micro_infrastructure.dir/micro_infrastructure.cpp.o"
  "CMakeFiles/micro_infrastructure.dir/micro_infrastructure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_infrastructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
