# Empty dependencies file for fig11_single_op_libraries.
# This may be replaced when dependencies are built.
