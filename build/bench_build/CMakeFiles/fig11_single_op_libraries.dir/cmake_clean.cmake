file(REMOVE_RECURSE
  "../bench/fig11_single_op_libraries"
  "../bench/fig11_single_op_libraries.pdb"
  "CMakeFiles/fig11_single_op_libraries.dir/fig11_single_op_libraries.cpp.o"
  "CMakeFiles/fig11_single_op_libraries.dir/fig11_single_op_libraries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_single_op_libraries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
