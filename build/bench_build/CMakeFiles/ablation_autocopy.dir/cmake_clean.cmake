file(REMOVE_RECURSE
  "../bench/ablation_autocopy"
  "../bench/ablation_autocopy.pdb"
  "CMakeFiles/ablation_autocopy.dir/ablation_autocopy.cpp.o"
  "CMakeFiles/ablation_autocopy.dir/ablation_autocopy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_autocopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
