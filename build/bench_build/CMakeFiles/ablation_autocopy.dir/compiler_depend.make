# Empty compiler generated dependencies file for ablation_autocopy.
# This may be replaced when dependencies are built.
