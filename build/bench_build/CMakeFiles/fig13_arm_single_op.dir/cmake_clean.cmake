file(REMOVE_RECURSE
  "../bench/fig13_arm_single_op"
  "../bench/fig13_arm_single_op.pdb"
  "CMakeFiles/fig13_arm_single_op.dir/fig13_arm_single_op.cpp.o"
  "CMakeFiles/fig13_arm_single_op.dir/fig13_arm_single_op.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_arm_single_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
