# Empty compiler generated dependencies file for fig13_arm_single_op.
# This may be replaced when dependencies are built.
