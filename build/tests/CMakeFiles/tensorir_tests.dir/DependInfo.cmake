
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arith.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_arith.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_arith.cpp.o.d"
  "/root/repo/tests/test_arith_extra.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_arith_extra.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_arith_extra.cpp.o.d"
  "/root/repo/tests/test_database.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_database.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_database.cpp.o.d"
  "/root/repo/tests/test_gbdt.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_gbdt.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_gbdt.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_hwsim.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_hwsim.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_hwsim.cpp.o.d"
  "/root/repo/tests/test_ir_basic.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_ir_basic.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_ir_basic.cpp.o.d"
  "/root/repo/tests/test_itermap_chains.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_itermap_chains.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_itermap_chains.cpp.o.d"
  "/root/repo/tests/test_lower_codegen.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_lower_codegen.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_lower_codegen.cpp.o.d"
  "/root/repo/tests/test_meta.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_meta.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_meta.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_runtime_intrinsics.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_runtime_intrinsics.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_runtime_intrinsics.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_schedule_errors.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_schedule_errors.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_schedule_errors.cpp.o.d"
  "/root/repo/tests/test_te_interp.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_te_interp.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_te_interp.cpp.o.d"
  "/root/repo/tests/test_tensorize.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_tensorize.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_tensorize.cpp.o.d"
  "/root/repo/tests/test_verify.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_verify.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_verify.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/tensorir_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/tensorir_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tensorir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
