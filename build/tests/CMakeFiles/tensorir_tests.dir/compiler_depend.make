# Empty compiler generated dependencies file for tensorir_tests.
# This may be replaced when dependencies are built.
