file(REMOVE_RECURSE
  "../examples/example_custom_intrinsic"
  "../examples/example_custom_intrinsic.pdb"
  "CMakeFiles/example_custom_intrinsic.dir/custom_intrinsic.cpp.o"
  "CMakeFiles/example_custom_intrinsic.dir/custom_intrinsic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_intrinsic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
