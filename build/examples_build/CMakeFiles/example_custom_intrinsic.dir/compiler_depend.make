# Empty compiler generated dependencies file for example_custom_intrinsic.
# This may be replaced when dependencies are built.
