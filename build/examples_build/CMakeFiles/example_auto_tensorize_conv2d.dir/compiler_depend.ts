# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_auto_tensorize_conv2d.
