file(REMOVE_RECURSE
  "../examples/example_auto_tensorize_conv2d"
  "../examples/example_auto_tensorize_conv2d.pdb"
  "CMakeFiles/example_auto_tensorize_conv2d.dir/auto_tensorize_conv2d.cpp.o"
  "CMakeFiles/example_auto_tensorize_conv2d.dir/auto_tensorize_conv2d.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_auto_tensorize_conv2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
