# Empty dependencies file for example_auto_tensorize_conv2d.
# This may be replaced when dependencies are built.
