file(REMOVE_RECURSE
  "../examples/example_end_to_end_model"
  "../examples/example_end_to_end_model.pdb"
  "CMakeFiles/example_end_to_end_model.dir/end_to_end_model.cpp.o"
  "CMakeFiles/example_end_to_end_model.dir/end_to_end_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_end_to_end_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
