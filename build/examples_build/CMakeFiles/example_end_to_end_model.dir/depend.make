# Empty dependencies file for example_end_to_end_model.
# This may be replaced when dependencies are built.
