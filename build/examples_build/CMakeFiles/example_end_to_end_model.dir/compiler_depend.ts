# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for example_end_to_end_model.
