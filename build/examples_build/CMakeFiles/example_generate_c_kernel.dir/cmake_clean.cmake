file(REMOVE_RECURSE
  "../examples/example_generate_c_kernel"
  "../examples/example_generate_c_kernel.pdb"
  "CMakeFiles/example_generate_c_kernel.dir/generate_c_kernel.cpp.o"
  "CMakeFiles/example_generate_c_kernel.dir/generate_c_kernel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_generate_c_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
