# Empty compiler generated dependencies file for example_generate_c_kernel.
# This may be replaced when dependencies are built.
