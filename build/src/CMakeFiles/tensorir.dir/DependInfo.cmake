
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arith/analyzer.cpp" "src/CMakeFiles/tensorir.dir/arith/analyzer.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/arith/analyzer.cpp.o.d"
  "/root/repo/src/arith/iter_map.cpp" "src/CMakeFiles/tensorir.dir/arith/iter_map.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/arith/iter_map.cpp.o.d"
  "/root/repo/src/arith/region.cpp" "src/CMakeFiles/tensorir.dir/arith/region.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/arith/region.cpp.o.d"
  "/root/repo/src/baselines/libraries.cpp" "src/CMakeFiles/tensorir.dir/baselines/libraries.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/baselines/libraries.cpp.o.d"
  "/root/repo/src/codegen/c_codegen.cpp" "src/CMakeFiles/tensorir.dir/codegen/c_codegen.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/codegen/c_codegen.cpp.o.d"
  "/root/repo/src/graph/executor.cpp" "src/CMakeFiles/tensorir.dir/graph/executor.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/graph/executor.cpp.o.d"
  "/root/repo/src/graph/models.cpp" "src/CMakeFiles/tensorir.dir/graph/models.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/graph/models.cpp.o.d"
  "/root/repo/src/hwsim/device.cpp" "src/CMakeFiles/tensorir.dir/hwsim/device.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/hwsim/device.cpp.o.d"
  "/root/repo/src/hwsim/stats.cpp" "src/CMakeFiles/tensorir.dir/hwsim/stats.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/hwsim/stats.cpp.o.d"
  "/root/repo/src/intrin/tensor_intrin.cpp" "src/CMakeFiles/tensorir.dir/intrin/tensor_intrin.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/intrin/tensor_intrin.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/CMakeFiles/tensorir.dir/ir/expr.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/ir/expr.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/tensorir.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/stmt.cpp" "src/CMakeFiles/tensorir.dir/ir/stmt.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/ir/stmt.cpp.o.d"
  "/root/repo/src/ir/structural_equal.cpp" "src/CMakeFiles/tensorir.dir/ir/structural_equal.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/ir/structural_equal.cpp.o.d"
  "/root/repo/src/ir/structural_hash.cpp" "src/CMakeFiles/tensorir.dir/ir/structural_hash.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/ir/structural_hash.cpp.o.d"
  "/root/repo/src/ir/transform.cpp" "src/CMakeFiles/tensorir.dir/ir/transform.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/ir/transform.cpp.o.d"
  "/root/repo/src/lower/lower.cpp" "src/CMakeFiles/tensorir.dir/lower/lower.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/lower/lower.cpp.o.d"
  "/root/repo/src/meta/auto_tensorize.cpp" "src/CMakeFiles/tensorir.dir/meta/auto_tensorize.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/meta/auto_tensorize.cpp.o.d"
  "/root/repo/src/meta/database.cpp" "src/CMakeFiles/tensorir.dir/meta/database.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/meta/database.cpp.o.d"
  "/root/repo/src/meta/gbdt.cpp" "src/CMakeFiles/tensorir.dir/meta/gbdt.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/meta/gbdt.cpp.o.d"
  "/root/repo/src/meta/search.cpp" "src/CMakeFiles/tensorir.dir/meta/search.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/meta/search.cpp.o.d"
  "/root/repo/src/meta/sketch.cpp" "src/CMakeFiles/tensorir.dir/meta/sketch.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/meta/sketch.cpp.o.d"
  "/root/repo/src/runtime/interpreter.cpp" "src/CMakeFiles/tensorir.dir/runtime/interpreter.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/runtime/interpreter.cpp.o.d"
  "/root/repo/src/te/te.cpp" "src/CMakeFiles/tensorir.dir/te/te.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/te/te.cpp.o.d"
  "/root/repo/src/tir/primitives_block.cpp" "src/CMakeFiles/tensorir.dir/tir/primitives_block.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/tir/primitives_block.cpp.o.d"
  "/root/repo/src/tir/primitives_cache.cpp" "src/CMakeFiles/tensorir.dir/tir/primitives_cache.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/tir/primitives_cache.cpp.o.d"
  "/root/repo/src/tir/primitives_compute.cpp" "src/CMakeFiles/tensorir.dir/tir/primitives_compute.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/tir/primitives_compute.cpp.o.d"
  "/root/repo/src/tir/primitives_loop.cpp" "src/CMakeFiles/tensorir.dir/tir/primitives_loop.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/tir/primitives_loop.cpp.o.d"
  "/root/repo/src/tir/schedule.cpp" "src/CMakeFiles/tensorir.dir/tir/schedule.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/tir/schedule.cpp.o.d"
  "/root/repo/src/tir/verify.cpp" "src/CMakeFiles/tensorir.dir/tir/verify.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/tir/verify.cpp.o.d"
  "/root/repo/src/workloads/workloads.cpp" "src/CMakeFiles/tensorir.dir/workloads/workloads.cpp.o" "gcc" "src/CMakeFiles/tensorir.dir/workloads/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
