# Empty dependencies file for tensorir.
# This may be replaced when dependencies are built.
