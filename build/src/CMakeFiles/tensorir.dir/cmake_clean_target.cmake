file(REMOVE_RECURSE
  "libtensorir.a"
)
